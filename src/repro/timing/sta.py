"""Static timing analysis over a placed netlist.

Implements the placement-level delay estimator of Section II-B: every
source->sink connection costs a linear function of its Manhattan length,
plus intrinsic LUT delay, FF clock-to-Q / setup, and pad delays.  Single
clock domain; timing start points are primary inputs and FF Q outputs,
end points are primary outputs and FF D inputs ("FF to FF paths",
Section I).

The analysis provides everything the rest of the flow consumes:

* arrival times and the critical endpoint/delay (clock period);
* the critical path as a cell sequence (for the local-replication
  baseline and for monotonicity statistics);
* required times, per-connection slack and VPR-style criticality (for
  the timing-driven placer and legalizer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.delay import LinearDelayModel
from repro.arch.fpga import FpgaArch
from repro.netlist.cells import CellType
from repro.netlist.netlist import Netlist
from repro.perf import PERF
from repro.place.placement import Placement

#: A timing end point: (cell id, input pin index).
Endpoint = tuple[int, int]


@dataclass
class TimingAnalysis:
    """Results of one STA pass (immutable snapshot).

    Attributes:
        arrival: Arrival time at each cell's *output* (start points
            included; OUTPUT pads excluded — they have no output).
        arrival_pred: For each cell, the (driver cell, pin) connection
            that determined its output arrival, or ``None`` at start
            points.  Enables critical-path backtracking.
        endpoint_arrival: Path delay at each timing end point, including
            capture overhead (setup / pad delay).
        critical_delay: Maximum endpoint arrival — the clock period.
        critical_endpoint: The endpoint achieving ``critical_delay``.
        required: Required time at each cell output under a clock target
            equal to ``critical_delay`` (so worst slack is exactly 0).
    """

    arrival: dict[int, float]
    arrival_pred: dict[int, Endpoint | None]
    endpoint_arrival: dict[Endpoint, float]
    critical_delay: float
    critical_endpoint: Endpoint | None
    required: dict[int, float]
    required_strict: dict[int, float]
    _netlist: Netlist
    _placement: Placement
    _model: LinearDelayModel

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def connection_delay(self, driver_id: int, sink_id: int) -> float:
        """Interconnect delay of the placed connection driver -> sink."""
        dist = self._placement.distance(driver_id, sink_id)
        return self._model.wire_delay(dist)

    def connection_slack(self, driver_id: int, sink_id: int, pin: int) -> float:
        """Slack of one connection under the critical-delay clock target."""
        return self._slack(driver_id, sink_id, self.required, self.critical_delay)

    def connection_slack_strict(self, driver_id: int, sink_id: int, pin: int) -> float:
        """Slack under per-endpoint targets: >= 0 moves never worsen any
        end point's current arrival (see ``required_strict``)."""
        target = self.critical_delay
        sink = self._netlist.cells[sink_id]
        if sink.is_timing_end and not sink.is_lut:
            target = self.endpoint_arrival.get((sink_id, 0), self.critical_delay)
        return self._slack(driver_id, sink_id, self.required_strict, target)

    def _slack(
        self,
        driver_id: int,
        sink_id: int,
        required: dict[int, float],
        endpoint_target: float,
    ) -> float:
        sink = self._netlist.cells[sink_id]
        wire = self.connection_delay(driver_id, sink_id)
        at_input = self.arrival[driver_id] + wire
        if sink.is_timing_end and not sink.is_lut:
            required_in = endpoint_target - self._model.capture_delay(sink.is_ff)
        else:
            required_in = required[sink_id] - self._model.cell_delay(sink.is_lut)
        return required_in - at_input

    def criticality(self, driver_id: int, sink_id: int, pin: int) -> float:
        """VPR criticality of a connection: ``1 - slack / T_crit`` in [0, 1]."""
        if self.critical_delay <= 0:
            return 0.0
        slack = self.connection_slack(driver_id, sink_id, pin)
        return max(0.0, min(1.0, 1.0 - slack / self.critical_delay))

    def cell_worst_path_delay(self, cell_id: int) -> float:
        """Delay of the slowest path *through* the cell's output.

        Used by the legalizer's timing cost (Section V-A).
        """
        cell = self._netlist.cells[cell_id]
        if cell.is_output_pad:
            return self.endpoint_arrival.get((cell_id, 0), 0.0)
        arr = self.arrival.get(cell_id)
        req = self.required.get(cell_id)
        if arr is None or req is None or math.isinf(req):
            return 0.0
        return arr + (self.critical_delay - req)

    def critical_path(self) -> list[int]:
        """Cell ids along the critical path, start point first.

        Includes the endpoint cell last.  Empty if the design has no
        endpoint (degenerate netlists in tests).
        """
        if self.critical_endpoint is None:
            return []
        return self.path_to_endpoint(self.critical_endpoint)

    def path_to_endpoint(self, endpoint: Endpoint) -> list[int]:
        """Slowest path terminating at ``endpoint``, start point first."""
        sink_id, pin = endpoint
        sink = self._netlist.cells[sink_id]
        path = [sink_id]
        net_id = sink.inputs[pin]
        current = self._netlist.nets[net_id].driver if net_id is not None else None
        while current is not None:
            path.append(current)
            pred = self.arrival_pred.get(current)
            current = pred[0] if pred is not None else None
        path.reverse()
        return path


def forward_pass(
    netlist: Netlist,
    placement: Placement,
    model: LinearDelayModel,
    order: list[int],
) -> tuple[dict[int, float], dict[int, Endpoint | None], dict[Endpoint, float]]:
    """Arrival propagation over ``order``; shared with the incremental STA.

    The incremental engine (:mod:`repro.timing.incremental`) re-evaluates
    single cells with the exact same expression shapes, so results stay
    bit-identical to a full pass — keep the arithmetic here and there in
    sync.
    """
    arrival: dict[int, float] = {}
    arrival_pred: dict[int, Endpoint | None] = {}
    endpoint_arrival: dict[Endpoint, float] = {}

    # Hoisted hot-loop state: the per-edge work below is the single most
    # executed code in a full analysis, so cell-type tests use ``is`` on
    # local enum members and the wire delay is computed inline (same
    # expression as LinearDelayModel.wire_delay, so values stay exact).
    cells = netlist.cells
    nets = netlist.nets
    slot = placement.slot_map()
    conn = model.connection_delay
    per_unit = model.wire_delay_per_unit
    lut_delay = model.cell_delay(True)
    launch_ff = model.launch_delay(True)
    launch_pad = model.launch_delay(False)
    capture_ff = model.capture_delay(True)
    capture_pad = model.capture_delay(False)
    t_input, t_output = CellType.INPUT, CellType.OUTPUT
    t_lut, t_ff = CellType.LUT, CellType.FF

    for cid in order:
        cell = cells[cid]
        ctype = cell.ctype
        if ctype is t_input:
            arrival[cid] = launch_pad
            arrival_pred[cid] = None
        elif ctype is t_ff:
            arrival[cid] = launch_ff
            arrival_pred[cid] = None
        elif ctype is t_lut:
            best = 0.0
            best_pred: Endpoint | None = None
            sx, sy = slot[cid]
            for pin, net_id in enumerate(cell.inputs):
                if net_id is None:
                    continue
                driver = nets[net_id].driver
                dx, dy = slot[driver]
                dist = (dx - sx if dx >= sx else sx - dx) + (
                    dy - sy if dy >= sy else sy - dy
                )
                wire = 0.0 if dist <= 0 else conn + per_unit * dist
                at = arrival[driver] + wire
                if best_pred is None or at > best:
                    best = at
                    best_pred = (driver, pin)
            arrival[cid] = best + lut_delay
            arrival_pred[cid] = best_pred
    # End-point arrivals in a second pass: an FF is both a start point
    # (early in topological order) and an end point whose D driver may be
    # ordered after it, so D-pin arrivals need all outputs settled first.
    for cid in order:
        cell = cells[cid]
        ctype = cell.ctype
        if ctype is not t_output and ctype is not t_ff:
            continue
        net_id = cell.inputs[0] if cell.inputs else None
        if net_id is not None:
            driver = nets[net_id].driver
            sx, sy = slot[cid]
            dx, dy = slot[driver]
            dist = (dx - sx if dx >= sx else sx - dx) + (
                dy - sy if dy >= sy else sy - dy
            )
            wire = 0.0 if dist <= 0 else conn + per_unit * dist
            endpoint_arrival[(cid, 0)] = (
                arrival[driver]
                + wire
                + (capture_ff if ctype is t_ff else capture_pad)
            )
    return arrival, arrival_pred, endpoint_arrival


def critical_of(endpoint_arrival: dict[Endpoint, float]) -> tuple[Endpoint | None, float]:
    """Critical endpoint/delay with the canonical ``(value, -cid)`` tie-break."""
    if endpoint_arrival:
        critical_endpoint, critical_delay = max(
            endpoint_arrival.items(), key=lambda item: (item[1], -item[0][0])
        )
        return critical_endpoint, critical_delay
    return None, 0.0


def backward_pass(
    netlist: Netlist,
    placement: Placement,
    model: LinearDelayModel,
    order: list[int],
    arrival: dict[int, float],
    endpoint_arrival: dict[Endpoint, float],
    critical_delay: float,
) -> tuple[dict[int, float], dict[int, float]]:
    """Required times at cell outputs.  All end-point constraints are
    seeded first (an FF's D driver can sit anywhere in the topological
    order), then LUTs propagate in reverse order.  Two targets:

    * ``required`` — the usual clock target (the critical delay): worst
      slack is exactly zero; drives placer criticalities.
    * ``required_strict`` — each end point is constrained to its OWN
      current arrival: a transform whose strict slacks stay >= 0 never
      makes ANY end point worse than it is now.  Unification and
      legalization budget against this, so fresh sub-critical gains on
      one sink cannot be silently traded away up to the clock period.

    Shared with the incremental STA, which re-evaluates single drivers
    with identical expression shapes (min-accumulation is order
    independent, so pull-based recomputation is bit-exact).
    """
    required: dict[int, float] = {cid: math.inf for cid in arrival}
    required_strict: dict[int, float] = {cid: math.inf for cid in arrival}
    # Same hoisting/inlining as forward_pass (see comment there); the
    # arithmetic below must stay expression-identical to the model
    # helpers for the incremental STA's bit-exactness contract.
    cells = netlist.cells
    nets = netlist.nets
    slot = placement.slot_map()
    conn = model.connection_delay
    per_unit = model.wire_delay_per_unit
    lut_delay = model.cell_delay(True)
    capture_ff = model.capture_delay(True)
    capture_pad = model.capture_delay(False)
    t_output, t_lut, t_ff = CellType.OUTPUT, CellType.LUT, CellType.FF

    for cid in order:
        cell = cells[cid]
        ctype = cell.ctype
        if (ctype is t_output or ctype is t_ff) and cell.inputs:
            net_id = cell.inputs[0]
            if net_id is not None:
                driver = nets[net_id].driver
                sx, sy = slot[cid]
                dx, dy = slot[driver]
                dist = (dx - sx if dx >= sx else sx - dx) + (
                    dy - sy if dy >= sy else sy - dy
                )
                wire = 0.0 if dist <= 0 else conn + per_unit * dist
                wire_and_capture = (
                    capture_ff if ctype is t_ff else capture_pad
                ) + wire
                req = critical_delay - wire_and_capture
                if req < required[driver]:
                    required[driver] = req
                own = endpoint_arrival.get((cid, 0), critical_delay) - wire_and_capture
                if own < required_strict[driver]:
                    required_strict[driver] = own
    for cid in reversed(order):
        cell = cells[cid]
        if cell.ctype is t_lut:
            req_at_inputs = required[cid] - lut_delay
            strict_at_inputs = required_strict[cid] - lut_delay
            sx, sy = slot[cid]
            for net_id in cell.inputs:
                if net_id is None:
                    continue
                driver = nets[net_id].driver
                dx, dy = slot[driver]
                dist = (dx - sx if dx >= sx else sx - dx) + (
                    dy - sy if dy >= sy else sy - dy
                )
                wire = 0.0 if dist <= 0 else conn + per_unit * dist
                req = req_at_inputs - wire
                if req < required[driver]:
                    required[driver] = req
                strict = strict_at_inputs - wire
                if strict < required_strict[driver]:
                    required_strict[driver] = strict
    return required, required_strict


def analyze(
    netlist: Netlist,
    placement: Placement,
    arch: FpgaArch | None = None,
) -> TimingAnalysis:
    """Run STA; all cells referenced by the netlist must be placed."""
    model = (arch.delay_model if arch is not None else placement.arch.delay_model)
    with PERF.timer("sta.analyze"):
        order = netlist.combinational_order()
        arrival, arrival_pred, endpoint_arrival = forward_pass(
            netlist, placement, model, order
        )
        critical_endpoint, critical_delay = critical_of(endpoint_arrival)
        required, required_strict = backward_pass(
            netlist, placement, model, order, arrival, endpoint_arrival, critical_delay
        )
    return TimingAnalysis(
        arrival=arrival,
        arrival_pred=arrival_pred,
        endpoint_arrival=endpoint_arrival,
        critical_delay=critical_delay,
        critical_endpoint=critical_endpoint,
        required=required,
        required_strict=required_strict,
        _netlist=netlist,
        _placement=placement,
        _model=model,
    )
