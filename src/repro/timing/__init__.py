"""Timing substrate: STA, slowest-paths trees, bounds, monotonicity."""

from repro.timing.bounds import delay_lower_bound, endpoint_lower_bound
from repro.timing.graph import cone_connections, fanin_cone, min_logic_depth
from repro.timing.monotonicity import (
    all_endpoint_paths_monotone,
    critical_path_stats,
    is_monotone,
    locally_nonmonotone_cells,
    nonmonotone_ratio,
    path_length,
)
from repro.timing.incremental import IncrementalSTA
from repro.timing.spt import SlowestPathsTree, build_spt
from repro.timing.sta import Endpoint, TimingAnalysis, analyze

__all__ = [
    "Endpoint",
    "IncrementalSTA",
    "SlowestPathsTree",
    "TimingAnalysis",
    "all_endpoint_paths_monotone",
    "analyze",
    "build_spt",
    "cone_connections",
    "critical_path_stats",
    "delay_lower_bound",
    "endpoint_lower_bound",
    "fanin_cone",
    "is_monotone",
    "locally_nonmonotone_cells",
    "min_logic_depth",
    "nonmonotone_ratio",
    "path_length",
]
