"""Path monotonicity metrics (Sections I and VII-B).

A placed path ``v1, ..., vk`` is *monotone* if the sum of consecutive
rectilinear hops equals the distance between its endpoints — i.e., no
hop detours.  The paper motivates replication by the observation that
critical paths of good placements are often highly non-monotone, defines
*local* monotonicity over length-3 windows (the criterion of the
Beraudo-Lillis baseline), and reports reaching "a theoretical lower
bound, i.e., all FF to FF paths are monotone" for several circuits.
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.place.placement import Placement
from repro.timing.sta import TimingAnalysis


def path_length(placement: Placement, path: list[int]) -> int:
    """Sum of consecutive Manhattan hop lengths along a placed path."""
    return sum(
        placement.distance(path[i], path[i + 1]) for i in range(len(path) - 1)
    )


def is_monotone(placement: Placement, path: list[int]) -> bool:
    """True if the path takes no detour between its two end cells."""
    if len(path) < 2:
        return True
    direct = placement.distance(path[0], path[-1])
    return path_length(placement, path) == direct


def nonmonotone_ratio(placement: Placement, path: list[int]) -> float:
    """Detour factor: traversed length / direct endpoint distance (>= 1).

    Returns 1.0 for degenerate paths (endpoints coincident or < 2 cells).
    """
    if len(path) < 2:
        return 1.0
    direct = placement.distance(path[0], path[-1])
    traversed = path_length(placement, path)
    if direct == 0:
        return 1.0 if traversed == 0 else float(traversed + 1)
    return traversed / direct


def locally_nonmonotone_cells(placement: Placement, path: list[int]) -> list[int]:
    """Cells v2 of windows (v1, v2, v3) where visiting v2 is a detour.

    This is the replication-candidate criterion of [Beraudo-Lillis 03]:
    ``d(v1, v3) < d(v1, v2) + d(v2, v3)``.
    """
    candidates = []
    for i in range(len(path) - 2):
        v1, v2, v3 = path[i], path[i + 1], path[i + 2]
        direct = placement.distance(v1, v3)
        through = placement.distance(v1, v2) + placement.distance(v2, v3)
        if direct < through:
            candidates.append(v2)
    return candidates


def all_endpoint_paths_monotone(
    netlist: Netlist, placement: Placement, analysis: TimingAnalysis
) -> bool:
    """True if every endpoint's *slowest* path is monotone.

    A cheap witness for the paper's "theoretical lower bound" condition:
    if even the slowest path into every end point is straight, replication
    has nothing left to straighten (for fixed FF locations).
    """
    for endpoint in analysis.endpoint_arrival:
        path = analysis.path_to_endpoint(endpoint)
        if not is_monotone(placement, path):
            return False
    return True


def critical_path_stats(
    netlist: Netlist, placement: Placement, analysis: TimingAnalysis
) -> dict[str, float]:
    """Summary statistics used by examples and the Fig 1-3 benches."""
    path = analysis.critical_path()
    return {
        "length_cells": float(len(path)),
        "traversed": float(path_length(placement, path)),
        "direct": float(placement.distance(path[0], path[-1])) if len(path) >= 2 else 0.0,
        "ratio": nonmonotone_ratio(placement, path),
        "locally_nonmonotone": float(len(locally_nonmonotone_cells(placement, path))),
    }
