"""repro: placement-coupled timing-driven logic replication for FPGAs.

A complete reimplementation of Hrkic, Lillis & Beraudo, *An Approach to
Placement-Coupled Logic Replication* (DAC 2004 / IEEE TCAD 2006),
including every substrate the paper depends on: a LUT/FF netlist model,
an island-style FPGA architecture, static timing analysis, a VPR-style
timing-driven simulated-annealing placer, a PathFinder-style
timing-driven router for post-route evaluation, the optimal fanin-tree
embedding DP, the replication tree, Lex-N/Lex-mc reconvergence-aware
variants, a timing-driven legalizer, and the local-replication baseline
the paper compares against.

Quick start (the :mod:`repro.api` facade)::

    from repro import api

    design = api.load_design(circuit="tseng", scale=0.1)
    placed = api.place(design, seed=1)
    result = api.optimize(design, placed.placement)
    print(placed.critical_delay, "->", result.final_delay)

The lower-level building blocks (schemes, embedder, legalizer, router)
remain importable from their subpackages; ``repro.optimize_replication``
is a deprecated alias of :func:`repro.api.optimize`'s core —
use the facade (or :func:`repro.core.flow.optimize_replication`).
"""

import warnings as _warnings

from repro.arch import ElmoreDelayModel, FpgaArch, LinearDelayModel
from repro.core import (
    EmbedderOptions,
    FaninTree,
    FaninTreeEmbedder,
    GridEmbeddingGraph,
    LexMcScheme,
    LexScheme,
    MaxArrivalScheme,
    OptimizationResult,
    ReplicationConfig,
    ReplicationOptimizer,
    scheme_by_name,
)
from repro.core.config import RunConfig
from repro.core.flow import optimize_replication as _optimize_replication
from repro.netlist import Netlist, check_equivalence, validate_netlist
from repro.place import (
    Placement,
    legalize_placement,
    place_timing_driven,
    place_wirelength_driven,
    total_wirelength,
)
from repro.route import route_infinite, route_low_stress, routed_critical_delay
from repro.timing import analyze, build_spt, delay_lower_bound

from repro import api
from repro.api import (
    Design,
    EvalResult,
    OptimizeResult,
    PlaceResult,
    RouteResult,
    campaign_report,
    campaign_resume,
    campaign_run,
    campaign_status,
    evaluate,
    load_design,
    optimize,
    resume,
)

__version__ = "1.1.0"


def optimize_replication(netlist, placement, config=None):
    """Deprecated alias of :func:`repro.core.flow.optimize_replication`.

    Kept so pre-facade callers keep working; new code should use
    :func:`repro.api.optimize` (or import the core function directly).
    """
    _warnings.warn(
        "repro.optimize_replication is deprecated; use repro.api.optimize "
        "(or repro.core.flow.optimize_replication)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _optimize_replication(netlist, placement, config)

__all__ = [
    "Design",
    "ElmoreDelayModel",
    "EmbedderOptions",
    "EvalResult",
    "FaninTree",
    "FaninTreeEmbedder",
    "FpgaArch",
    "GridEmbeddingGraph",
    "LexMcScheme",
    "LexScheme",
    "LinearDelayModel",
    "MaxArrivalScheme",
    "Netlist",
    "OptimizationResult",
    "OptimizeResult",
    "PlaceResult",
    "Placement",
    "ReplicationConfig",
    "ReplicationOptimizer",
    "RouteResult",
    "RunConfig",
    "analyze",
    "api",
    "campaign_report",
    "campaign_resume",
    "campaign_run",
    "campaign_status",
    "evaluate",
    "load_design",
    "optimize",
    "resume",
    "build_spt",
    "check_equivalence",
    "delay_lower_bound",
    "legalize_placement",
    "optimize_replication",
    "place_timing_driven",
    "place_wirelength_driven",
    "route_infinite",
    "route_low_stress",
    "routed_critical_delay",
    "scheme_by_name",
    "total_wirelength",
    "validate_netlist",
    "__version__",
]
