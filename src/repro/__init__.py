"""repro: placement-coupled timing-driven logic replication for FPGAs.

A complete reimplementation of Hrkic, Lillis & Beraudo, *An Approach to
Placement-Coupled Logic Replication* (DAC 2004 / IEEE TCAD 2006),
including every substrate the paper depends on: a LUT/FF netlist model,
an island-style FPGA architecture, static timing analysis, a VPR-style
timing-driven simulated-annealing placer, a PathFinder-style
timing-driven router for post-route evaluation, the optimal fanin-tree
embedding DP, the replication tree, Lex-N/Lex-mc reconvergence-aware
variants, a timing-driven legalizer, and the local-replication baseline
the paper compares against.

Quick start::

    from repro import optimize_replication, place_timing_driven, analyze
    from repro.bench import suite_circuit

    netlist, arch = suite_circuit("tseng", scale=0.1)
    placement, _ = place_timing_driven(netlist, arch, seed=1)
    before = analyze(netlist, placement).critical_delay
    result = optimize_replication(netlist, placement)
    print(before, "->", result.final_delay)
"""

from repro.arch import ElmoreDelayModel, FpgaArch, LinearDelayModel
from repro.core import (
    EmbedderOptions,
    FaninTree,
    FaninTreeEmbedder,
    GridEmbeddingGraph,
    LexMcScheme,
    LexScheme,
    MaxArrivalScheme,
    OptimizationResult,
    ReplicationConfig,
    ReplicationOptimizer,
    optimize_replication,
    scheme_by_name,
)
from repro.netlist import Netlist, check_equivalence, validate_netlist
from repro.place import (
    Placement,
    legalize_placement,
    place_timing_driven,
    place_wirelength_driven,
    total_wirelength,
)
from repro.route import route_infinite, route_low_stress, routed_critical_delay
from repro.timing import analyze, build_spt, delay_lower_bound

__version__ = "1.0.0"

__all__ = [
    "ElmoreDelayModel",
    "EmbedderOptions",
    "FaninTree",
    "FaninTreeEmbedder",
    "FpgaArch",
    "GridEmbeddingGraph",
    "LexMcScheme",
    "LexScheme",
    "LinearDelayModel",
    "MaxArrivalScheme",
    "Netlist",
    "OptimizationResult",
    "Placement",
    "ReplicationConfig",
    "ReplicationOptimizer",
    "analyze",
    "build_spt",
    "check_equivalence",
    "delay_lower_bound",
    "legalize_placement",
    "optimize_replication",
    "place_timing_driven",
    "place_wirelength_driven",
    "route_infinite",
    "route_low_stress",
    "routed_critical_delay",
    "scheme_by_name",
    "total_wirelength",
    "validate_netlist",
    "__version__",
]
