"""Adaptive simulated-annealing engine with the VPR schedule.

This is the reusable SA core under both the wirelength-driven and the
timing-driven (T-VPlace-style) placers in
:mod:`repro.place.timing_driven`.  The schedule follows [18] /
VPR: the initial temperature is a multiple of the cost-delta standard
deviation over random moves, the cooling rate adapts to the acceptance
ratio, the move range limit shrinks to keep acceptance near 44%, and the
run exits when the temperature is negligible relative to per-net cost.

The engine is objective-agnostic: callers supply a :class:`MoveEvaluator`
that proposes/scores/commits moves; the engine owns only temperatures,
acceptance and statistics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol


class MoveEvaluator(Protocol):
    """Objective-specific move logic plugged into :func:`anneal`."""

    def propose(self, rng: random.Random, range_limit: int) -> object | None:
        """Propose a move; ``None`` if no move is possible."""

    def delta_cost(self, move: object) -> float:
        """Normalized cost change if ``move`` were committed."""

    def commit(self, move: object) -> None:
        """Apply ``move``."""

    def on_temperature(self) -> None:
        """Hook at each temperature change (refresh normalizations etc.)."""

    def current_cost(self) -> float:
        """Current normalized total cost (for exit criterion)."""

    def cost_scale(self) -> float:
        """Per-item cost scale used in the exit test (e.g. cost/num nets)."""


@dataclass
class AnnealStats:
    """Run statistics for logging and tests."""

    temperatures: int = 0
    moves_proposed: int = 0
    moves_accepted: int = 0

    @property
    def acceptance(self) -> float:
        if not self.moves_proposed:
            return 0.0
        return self.moves_accepted / self.moves_proposed


def initial_temperature(
    evaluator: MoveEvaluator, rng: random.Random, probes: int, range_limit: int
) -> float:
    """VPR's start temperature: 20 x std-dev of probe move costs.

    The probe moves are *committed* (as VPR does), which also randomizes
    the start further; statistics are collected over their deltas.
    """
    deltas: list[float] = []
    for _ in range(max(4, probes)):
        move = evaluator.propose(rng, range_limit)
        if move is None:
            continue
        delta = evaluator.delta_cost(move)
        evaluator.commit(move)
        deltas.append(delta)
    if not deltas:
        return 1.0
    mean = sum(deltas) / len(deltas)
    variance = sum((d - mean) ** 2 for d in deltas) / len(deltas)
    return max(20.0 * math.sqrt(variance), 1e-6)


def _cooling_rate(acceptance: float) -> float:
    """VPR's acceptance-dependent cooling multiplier."""
    if acceptance > 0.96:
        return 0.5
    if acceptance > 0.8:
        return 0.9
    if acceptance > 0.15:
        return 0.95
    return 0.8


def anneal(
    evaluator: MoveEvaluator,
    num_items: int,
    max_range: int,
    seed: int = 0,
    inner_scale: float = 1.0,
    exit_ratio: float = 0.005,
) -> AnnealStats:
    """Run adaptive SA until the temperature is negligible.

    Args:
        evaluator: Objective plug-in.
        num_items: Number of movable items (sets per-temperature effort:
            ``inner_scale * num_items ** 4/3`` moves, as in VPR).
        max_range: Largest useful move range limit (e.g. FPGA side).
        seed: RNG seed (the run is fully deterministic).
        inner_scale: VPR's ``inner_num`` quality/effort dial.
        exit_ratio: Stop when ``T < exit_ratio * cost_scale``.
    """
    rng = random.Random(seed)
    stats = AnnealStats()
    range_limit = max_range
    moves_per_temp = max(8, int(inner_scale * (max(num_items, 1) ** (4.0 / 3.0))))

    temperature = initial_temperature(evaluator, rng, num_items, range_limit)
    evaluator.on_temperature()

    while True:
        accepted = 0
        proposed = 0
        for _ in range(moves_per_temp):
            move = evaluator.propose(rng, range_limit)
            if move is None:
                continue
            proposed += 1
            delta = evaluator.delta_cost(move)
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                evaluator.commit(move)
                accepted += 1
        stats.temperatures += 1
        stats.moves_proposed += proposed
        stats.moves_accepted += accepted

        acceptance = accepted / proposed if proposed else 0.0
        temperature *= _cooling_rate(acceptance)
        # Keep acceptance near 44% by shrinking/growing the window.
        range_limit = int(range_limit * (1.0 - 0.44 + acceptance))
        range_limit = max(1, min(range_limit, max_range))
        evaluator.on_temperature()

        if temperature < exit_ratio * max(evaluator.cost_scale(), 1e-12):
            break
        if stats.temperatures > 400:  # safety net for degenerate objectives
            break
    return stats
