"""Wirelength estimation: half-perimeter with net-size correction.

VPR's placement cost [18] estimates each net's wiring as its bounding-box
half-perimeter scaled by a crossing coefficient q(n) (from Cheng's RISA
model) that compensates for the half-perimeter metric underestimating
multi-terminal nets.  The paper's legalizer uses the same estimate:
"Wire length estimation is given by the half-perimeter metric augmented
by a net size coefficient from [18]" (Section V-A).
"""

from __future__ import annotations

from repro.netlist.netlist import Netlist
from repro.place.placement import Placement

#: RISA crossing coefficients for nets with 1..50 terminals (q[k] is the
#: coefficient for a net with k terminals; index 0 unused).
_Q_TABLE = [
    0.0,
    1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493,
    1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114, 1.8519,
    1.8924, 1.9288, 1.9652, 2.0015, 2.0379, 2.0743, 2.1061, 2.1379, 2.1698,
    2.2016, 2.2334, 2.2646, 2.2958, 2.3271, 2.3583, 2.3895, 2.4187, 2.4479,
    2.4772, 2.5064, 2.5356, 2.5610, 2.5864, 2.6117, 2.6371, 2.6625, 2.6887,
    2.7148, 2.7410, 2.7671, 2.7933,
]


def crossing_factor(num_terminals: int) -> float:
    """q(n) for a net with ``num_terminals`` pins (driver + sinks)."""
    if num_terminals <= 0:
        return 0.0
    if num_terminals < len(_Q_TABLE):
        return _Q_TABLE[num_terminals]
    # Linear extrapolation used by VPR beyond the table.
    return 2.7933 + 0.02616 * (num_terminals - 50)


def net_bounding_box(
    netlist: Netlist, placement: Placement, net_id: int
) -> tuple[int, int, int, int] | None:
    """Bounding box (xmin, ymin, xmax, ymax) of a placed net, or ``None``
    if the net has no placed terminals."""
    net = netlist.nets[net_id]
    xs: list[int] = []
    ys: list[int] = []
    terminals = [net.driver] if net.driver is not None else []
    terminals += [cell_id for cell_id, _ in net.sinks]
    for cell_id in terminals:
        slot = placement.get(cell_id)
        if slot is not None:
            xs.append(slot[0])
            ys.append(slot[1])
    if not xs:
        return None
    return min(xs), min(ys), max(xs), max(ys)


def net_wirelength(netlist: Netlist, placement: Placement, net_id: int) -> float:
    """q(n)-corrected half-perimeter wirelength of one net."""
    box = net_bounding_box(netlist, placement, net_id)
    if box is None:
        return 0.0
    xmin, ymin, xmax, ymax = box
    net = netlist.nets[net_id]
    terminals = (1 if net.driver is not None else 0) + net.fanout
    return crossing_factor(terminals) * ((xmax - xmin) + (ymax - ymin))


def total_wirelength(netlist: Netlist, placement: Placement) -> float:
    """Sum of q(n)-corrected half-perimeters over all nets."""
    return sum(net_wirelength(netlist, placement, nid) for nid in netlist.nets)


def cell_wirelength(netlist: Netlist, placement: Placement, cell_id: int) -> float:
    """Wire cost attributed to one cell: its driven net plus input nets.

    This is the legalizer's wire component (Section V-A): "the sum of the
    estimated wire lengths of the net for which the current cell is the
    driver and those nets that are inputs of the cell."
    """
    cell = netlist.cells[cell_id]
    nets: set[int] = set()
    if cell.output is not None:
        nets.add(cell.output)
    for net_id in cell.inputs:
        if net_id is not None:
            nets.add(net_id)
    return sum(net_wirelength(netlist, placement, nid) for nid in nets)
