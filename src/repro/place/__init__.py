"""Placement substrate: VPR-style SA placer, wirelength model, legalizer."""

from repro.place.annealer import AnnealStats, anneal
from repro.place.hpwl import (
    cell_wirelength,
    crossing_factor,
    net_bounding_box,
    net_wirelength,
    total_wirelength,
)
from repro.place.initial import random_placement
from repro.place.legalizer import LegalizeResult, TimingDrivenLegalizer, legalize_placement
from repro.place.placement import Placement, PlacementError
from repro.place.serialize import placement_from_json, placement_to_json
from repro.place.timing_driven import (
    PlacementEvaluator,
    place_timing_driven,
    place_wirelength_driven,
)

__all__ = [
    "AnnealStats",
    "LegalizeResult",
    "Placement",
    "PlacementError",
    "PlacementEvaluator",
    "TimingDrivenLegalizer",
    "anneal",
    "cell_wirelength",
    "crossing_factor",
    "legalize_placement",
    "net_bounding_box",
    "net_wirelength",
    "place_timing_driven",
    "placement_from_json",
    "placement_to_json",
    "place_wirelength_driven",
    "random_placement",
    "total_wirelength",
]
