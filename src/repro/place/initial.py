"""Initial placement construction.

Random-but-deterministic starting points for the annealer: pads are
scattered over the perimeter and logic cells over interior slots, with
capacities respected, exactly like VPR's random start.
"""

from __future__ import annotations

import random

from repro.arch.fpga import FpgaArch
from repro.netlist.netlist import Netlist
from repro.place.placement import Placement, PlacementError


def random_placement(netlist: Netlist, arch: FpgaArch, seed: int = 0) -> Placement:
    """Uniform random legal placement (deterministic in ``seed``)."""
    rng = random.Random(seed)
    placement = Placement(arch)

    pads = sorted(
        (c for c in netlist.cells.values() if c.ctype.is_pad), key=lambda c: c.cell_id
    )
    logic = sorted(
        (c for c in netlist.cells.values() if not c.ctype.is_pad), key=lambda c: c.cell_id
    )

    pad_positions = [
        slot for slot in arch.pad_slots() for _ in range(arch.pads_per_slot)
    ]
    logic_positions = [
        slot for slot in arch.logic_slots() for _ in range(arch.clb_capacity)
    ]
    if len(pads) > len(pad_positions):
        raise PlacementError(
            f"{len(pads)} pads exceed pad capacity {len(pad_positions)} of {arch}"
        )
    if len(logic) > len(logic_positions):
        raise PlacementError(
            f"{len(logic)} logic cells exceed capacity {len(logic_positions)} of {arch}"
        )
    rng.shuffle(pad_positions)
    rng.shuffle(logic_positions)
    for cell, slot in zip(pads, pad_positions):
        placement.place(cell, slot)
    for cell, slot in zip(logic, logic_positions):
        placement.place(cell, slot)
    return placement
