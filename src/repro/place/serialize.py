"""Placement save/load (JSON) — checkpoints between flow stages.

A placement file stores the architecture dimensions and every cell's
slot by *name* (names are stable across BLIF round-trips while ids are
not), so a placement can be re-applied to a reparsed netlist.
"""

from __future__ import annotations

import json

from repro.arch.fpga import FpgaArch
from repro.netlist.netlist import Netlist
from repro.place.placement import Placement

FORMAT_VERSION = 1


def placement_to_json(netlist: Netlist, placement: Placement) -> str:
    """Serialize a placement (cell-name -> slot) to a JSON string."""
    arch = placement.arch
    payload = {
        "version": FORMAT_VERSION,
        "arch": {
            "width": arch.width,
            "height": arch.height,
            "lut_size": arch.lut_size,
            "clb_capacity": arch.clb_capacity,
            "pads_per_slot": arch.pads_per_slot,
        },
        "cells": {
            netlist.cells[cid].name: list(placement.slot_of(cid))
            for cid in placement.placed_cells()
            if cid in netlist.cells
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def placement_from_json(
    netlist: Netlist, text: str, arch: FpgaArch | None = None
) -> Placement:
    """Rebuild a placement for ``netlist`` from :func:`placement_to_json`.

    Args:
        netlist: The design (cells matched by name; all stored names must
            exist).
        text: JSON produced by :func:`placement_to_json`.
        arch: Override architecture; by default one is reconstructed from
            the stored dimensions (with the default delay model).

    Raises:
        ValueError: On version/name mismatches.
    """
    payload = json.loads(text)
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported placement format {payload.get('version')!r}")
    if arch is None:
        stored = payload["arch"]
        arch = FpgaArch(
            width=stored["width"],
            height=stored["height"],
            lut_size=stored.get("lut_size", 4),
            clb_capacity=stored.get("clb_capacity", 1),
            pads_per_slot=stored.get("pads_per_slot", 2),
        )
    by_name = {cell.name: cell for cell in netlist.cells.values()}
    placement = Placement(arch)
    for name, slot in payload["cells"].items():
        cell = by_name.get(name)
        if cell is None:
            raise ValueError(f"placement references unknown cell {name!r}")
        placement.place(cell, tuple(slot))
    return placement
