"""Placement container: cell -> slot assignment with occupancy tracking.

The replication flow deliberately creates *illegal* (overfull) placements
— Section II-A: "we already allow placement overlaps with other gates
outside of the critical tree to avoid overconstraining the solution
space ... let the legalizer handle the overlap" — so this container
tracks occupancy per slot and reports overflow rather than forbidding it.
Pads may only sit on pad slots and logic cells only on logic slots; that
invariant *is* enforced.
"""

from __future__ import annotations

from collections import defaultdict

from repro.arch.fpga import FpgaArch, Slot
from repro.netlist.cells import Cell
from repro.netlist.netlist import Netlist


class PlacementError(Exception):
    """Raised on structurally invalid placement operations."""


class Placement:
    """Mutable cell -> slot assignment over an :class:`FpgaArch`."""

    def __init__(self, arch: FpgaArch) -> None:
        self.arch = arch
        self._slot_of: dict[int, Slot] = {}
        self._cells_at: dict[Slot, list[int]] = defaultdict(list)
        #: Move listeners (e.g. the incremental STA); each exposes
        #: ``pl_moved(cell_id)`` and ``pl_bulk()``.
        self._listeners: list = []

    def __getstate__(self):
        # Listeners are session-local observers (see Netlist.__getstate__).
        state = self.__dict__.copy()
        state["_listeners"] = []
        return state

    # ------------------------------------------------------------------
    # Move listeners
    # ------------------------------------------------------------------

    def add_listener(self, listener) -> None:
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def notify_bulk(self) -> None:
        """Signal a wholesale content replacement (rollbacks, snapshots)."""
        for listener in self._listeners:
            listener.pl_bulk()

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------

    def place(self, cell: Cell, slot: Slot) -> None:
        """Place (or move) ``cell`` at ``slot``; overlap is permitted."""
        if cell.ctype.is_pad:
            if not self.arch.is_pad_slot(slot):
                raise PlacementError(f"pad {cell.name!r} must go on the perimeter, not {slot}")
        elif not self.arch.is_logic_slot(slot):
            raise PlacementError(f"logic cell {cell.name!r} must go on a logic slot, not {slot}")
        self.unplace(cell.cell_id)
        self._slot_of[cell.cell_id] = slot
        self._cells_at[slot].append(cell.cell_id)
        if self._listeners:
            for listener in self._listeners:
                listener.pl_moved(cell.cell_id)

    def unplace(self, cell_id: int) -> None:
        """Remove a cell from the placement (no-op if unplaced)."""
        slot = self._slot_of.pop(cell_id, None)
        if slot is not None:
            self._cells_at[slot].remove(cell_id)
            if not self._cells_at[slot]:
                del self._cells_at[slot]
            if self._listeners:
                for listener in self._listeners:
                    listener.pl_moved(cell_id)

    def slot_of(self, cell_id: int) -> Slot:
        """Slot of a placed cell; raises if unplaced."""
        try:
            return self._slot_of[cell_id]
        except KeyError:
            raise PlacementError(f"cell {cell_id} is not placed") from None

    def get(self, cell_id: int) -> Slot | None:
        """Slot of a cell or ``None`` if unplaced."""
        return self._slot_of.get(cell_id)

    def slot_map(self) -> dict[int, Slot]:
        """The live cell-id -> slot mapping, for read-only bulk access.

        Hot analysis loops (STA passes) index this directly instead of
        paying a method call per edge.  Treat it as frozen: mutating it
        would desynchronize the per-slot occupancy index.
        """
        return self._slot_of

    def cells_at(self, slot: Slot) -> list[int]:
        """Cell ids currently at ``slot`` (possibly more than capacity)."""
        return list(self._cells_at.get(slot, ()))

    def occupancy(self, slot: Slot) -> int:
        return len(self._cells_at.get(slot, ()))

    def is_placed(self, cell_id: int) -> bool:
        return cell_id in self._slot_of

    def placed_cells(self) -> list[int]:
        return list(self._slot_of)

    # ------------------------------------------------------------------
    # Legality
    # ------------------------------------------------------------------

    def overfull_slots(self) -> list[Slot]:
        """Slots whose occupancy exceeds architectural capacity, sorted."""
        return sorted(
            slot
            for slot, cells in self._cells_at.items()
            if len(cells) > self.arch.slot_capacity(slot)
        )

    def is_legal(self) -> bool:
        return not self.overfull_slots()

    def free_logic_slots(self) -> list[Slot]:
        """Logic slots with spare capacity, row-major order."""
        return [
            slot
            for slot in self.arch.logic_slots()
            if self.occupancy(slot) < self.arch.clb_capacity
        ]

    def free_capacity(self, slot: Slot) -> int:
        return self.arch.slot_capacity(slot) - self.occupancy(slot)

    def assert_complete(self, netlist: Netlist) -> None:
        """Raise unless every netlist cell is placed."""
        missing = [c.name for c in netlist.cells.values() if c.cell_id not in self._slot_of]
        if missing:
            raise PlacementError(f"unplaced cells: {missing[:8]}{'...' if len(missing) > 8 else ''}")

    def prune_to(self, netlist: Netlist) -> None:
        """Drop placements of cells that no longer exist in the netlist."""
        for cell_id in list(self._slot_of):
            if cell_id not in netlist.cells:
                self.unplace(cell_id)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def copy(self) -> "Placement":
        other = Placement(self.arch)
        other._slot_of = dict(self._slot_of)
        other._cells_at = defaultdict(list, {s: list(c) for s, c in self._cells_at.items()})
        return other

    def distance(self, cell_a: int, cell_b: int) -> int:
        """Manhattan distance between two placed cells."""
        return self.arch.distance(self.slot_of(cell_a), self.slot_of(cell_b))

    def __len__(self) -> int:
        return len(self._slot_of)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Placement({len(self)} cells on {self.arch}, overfull={len(self.overfull_slots())})"
