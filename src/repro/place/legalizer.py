"""Timing-driven ripple-move legalization (Section V-A).

After embedding/replication the placement usually has overfull slots.
The legalizer resolves one overlap at a time:

1. pick the first overfull slot in scan order;
2. find up to four closest free slots (one per quadrant);
3. build the *gain graph* — monotone rectilinear paths from the overfull
   slot to each free slot, each edge labelled with the gain of moving the
   occupying cell one step toward the target;
4. pick the max-gain path and execute a ripple move along it, shifting
   each cell by at most one slot;
5. if a rippling cell lands on a logically equivalent cell, unify them
   and end the pass.

Gain is ``C_current - C_new`` with ``C = alpha * C_T + (1 - alpha) * C_W``:
``C_W`` is the q(n)-corrected wirelength of the cell's incident nets and
``C_T`` the squared slowest-path delay through the cell when that path is
within 40% of critical (0 otherwise).  The paper uses ``alpha = 0.95``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.fpga import Slot
from repro.netlist.netlist import Netlist
from repro.place.hpwl import cell_wirelength
from repro.place.placement import Placement
from repro.timing.sta import TimingAnalysis, analyze


@dataclass
class LegalizeResult:
    """Outcome of one :meth:`TimingDrivenLegalizer.legalize` call."""

    resolved_overlaps: int = 0
    ripple_moves: int = 0
    #: Total Manhattan distance the moved cells travelled (observability:
    #: the flow journal reports it per iteration as legalizer churn).
    displacement: int = 0
    unifications: list[tuple[int, int]] = field(default_factory=list)
    success: bool = True


class TimingDrivenLegalizer:
    """Ripple-move legalizer with the composite timing/wire gain."""

    def __init__(
        self,
        netlist: Netlist,
        placement: Placement,
        alpha: float = 0.95,
        near_critical_fraction: float = 0.4,
        allow_unification: bool = True,
        sta=None,
    ) -> None:
        self.netlist = netlist
        self.placement = placement
        self.alpha = alpha
        self.near_critical_fraction = near_critical_fraction
        self.allow_unification = allow_unification
        #: Optional :class:`repro.timing.IncrementalSTA` already tracking
        #: this netlist/placement; when present each overlap's STA is a
        #: cone re-propagation instead of a from-scratch analyze().
        self._sta = sta
        self._analysis: TimingAnalysis | None = None
        self._strict = True
        # Per-analysis memoization: for a fixed analysis snapshot and a
        # static placement of every *other* cell, both cost functions
        # depend only on (cell, slot).  The gain-path DP re-scores the
        # same pairs once per corridor (up to eight corridors per
        # overlap), so the caches collapse most of the legalizer's work.
        # They are cleared whenever a committed move changes the
        # placement (a neighbour's slot is an implicit input).
        self._cost_cache: dict[tuple[int, Slot], float] = {}
        self._worst_cache: dict[tuple[int, Slot], float] = {}

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def _cell_cost(self, analysis: TimingAnalysis, cell_id: int, slot: Slot) -> float:
        cached = self._cost_cache.get((cell_id, slot))
        if cached is not None:
            return cached
        original = self.placement.slot_of(cell_id)
        try:
            if slot != original:
                self.placement.place(self.netlist.cells[cell_id], slot)
            wire = cell_wirelength(self.netlist, self.placement, cell_id)
            timing = 0.0
            worst = self._worst_path_through(analysis, cell_id)
            threshold = (1.0 - self.near_critical_fraction) * analysis.critical_delay
            if worst >= threshold:
                timing = worst * worst
        finally:
            if slot != original:
                self.placement.place(self.netlist.cells[cell_id], original)
        cost = self.alpha * timing + (1.0 - self.alpha) * wire
        self._cost_cache[(cell_id, slot)] = cost
        return cost

    def _worst_path_through(self, analysis: TimingAnalysis, cell_id: int) -> float:
        """Slowest path through the cell at its *current placement slot*.

        Recomputed from the neighbours' (analysis-time) arrival/required
        values so that hypothetical slots are scored without a full STA.
        """
        cell = self.netlist.cells[cell_id]
        model = self.placement.arch.delay_model
        slot = self.placement.slot_of(cell_id)
        cached = self._worst_cache.get((cell_id, slot))
        if cached is not None:
            return cached

        if cell.is_timing_start:
            worst_in = model.launch_delay(cell.is_ff)
        else:
            worst_in = 0.0
            for net_id in cell.inputs:
                if net_id is None:
                    continue
                driver = self.netlist.nets[net_id].driver
                if driver is None or driver not in analysis.arrival:
                    continue
                dist = self.placement.arch.distance(
                    self.placement.slot_of(driver), slot
                )
                worst_in = max(
                    worst_in, analysis.arrival[driver] + model.wire_delay(dist)
                )
        if cell.is_timing_end and not cell.is_lut:
            worst = worst_in + model.capture_delay(cell.is_ff)
            self._worst_cache[(cell_id, slot)] = worst
            return worst

        at_output = worst_in + model.cell_delay(cell.is_lut)
        worst_down = 0.0
        for sink_id, _pin in self.netlist.fanout_pins(cell):
            sink = self.netlist.cells[sink_id]
            dist = self.placement.arch.distance(slot, self.placement.slot_of(sink_id))
            wire = model.wire_delay(dist)
            if sink.is_timing_end and not sink.is_lut:
                downstream = wire + model.capture_delay(sink.is_ff)
            else:
                req = analysis.required.get(sink_id)
                if req is None or req == float("inf"):
                    continue
                downstream = wire + model.cell_delay(True) + (
                    analysis.critical_delay - req
                )
            worst_down = max(worst_down, downstream)
        worst = at_output + worst_down
        self._worst_cache[(cell_id, slot)] = worst
        return worst

    # ------------------------------------------------------------------
    # Free-slot search and gain paths
    # ------------------------------------------------------------------

    def _closest_free_per_quadrant(self, center: Slot) -> list[Slot]:
        free = self.placement.free_logic_slots()
        best: dict[tuple[bool, bool], list[tuple[int, Slot]]] = {}
        cx, cy = center
        for slot in free:
            dx, dy = slot[0] - cx, slot[1] - cy
            quadrant = (dx >= 0, dy >= 0)
            dist = abs(dx) + abs(dy)
            best.setdefault(quadrant, []).append((dist, slot))
        targets: list[Slot] = []
        for candidates in best.values():
            candidates.sort()
            # Two nearest per quadrant: a slightly farther slot sometimes
            # offers a much less damaging ripple corridor.
            targets.extend(slot for _dist, slot in candidates[:2])
        return sorted(targets)

    def _best_gain_path(
        self, analysis: TimingAnalysis, source: Slot, target: Slot
    ) -> tuple[float, list[Slot]]:
        """Max-gain monotone path source -> target over the bounding rect.

        DP over the rectangle: ``best(u) = max over steps toward target of
        edge_gain(u, v) + best(v)``; an edge's gain is the gain of moving
        ``u``'s best occupant one step to ``v``.
        """
        sx, sy = source
        tx, ty = target
        step_x = 0 if tx == sx else (1 if tx > sx else -1)
        step_y = 0 if ty == sy else (1 if ty > sy else -1)

        xs = list(range(sx, tx + step_x, step_x)) if step_x else [sx]
        ys = list(range(sy, ty + step_y, step_y)) if step_y else [sy]

        best_gain: dict[Slot, float] = {target: 0.0}
        best_next: dict[Slot, Slot | None] = {target: None}
        for x in reversed(xs):
            for y in reversed(ys):
                slot = (x, y)
                if slot == target:
                    continue
                candidates: list[tuple[float, Slot]] = []
                for nxt in ((x + step_x, y), (x, y + step_y)):
                    if nxt in best_gain:
                        candidates.append((self._edge_gain(analysis, slot, nxt), nxt))
                if not candidates:
                    continue
                gain, nxt = max(candidates, key=lambda item: item[0])
                best_gain[slot] = gain + best_gain[nxt]
                best_next[slot] = nxt
        if source not in best_gain:
            return float("-inf"), []
        path = [source]
        cursor: Slot | None = source
        while cursor is not None and cursor != target:
            cursor = best_next[cursor]
            if cursor is not None:
                path.append(cursor)
        return best_gain[source], path

    #: Gain assigned to edges that would displace a critical cell while
    #: the strict pass is active (effectively forbids the move).
    _FORBIDDEN = -1e15

    def _edge_gain(self, analysis: TimingAnalysis, slot: Slot, nxt: Slot) -> float:
        cell_id = self._pick_occupant(slot)
        if cell_id is None:
            return 0.0
        if self._strict:
            worst = self._worst_path_through(analysis, cell_id)
            # A one-slot move can lengthen the cell's paths by up to two
            # wire units; block the edge if that could set a new critical.
            margin = 2.0 * self.placement.arch.delay_model.wire_delay_per_unit
            if worst + margin >= analysis.critical_delay - 1e-9:
                # Displacing a cell on the critical path would undo the
                # embedding this legalization is cleaning up after; route
                # the ripple around it (fall back only if impossible).
                return self._FORBIDDEN
        return self._cell_cost(analysis, cell_id, slot) - self._cell_cost(
            analysis, cell_id, nxt
        )

    def _pick_occupant(self, slot: Slot) -> int | None:
        """The occupant whose displacement hurts timing least.

        "We observe that by moving cells that are on a critical path one
        may degrade circuit performance" — so the ripple displaces the
        *least* critical movable occupant of each slot.
        """
        occupants = self.placement.cells_at(slot)
        movable = [cid for cid in occupants if not self.netlist.cells[cid].ctype.is_pad]
        if not movable:
            return None
        if self._analysis is None:
            return min(movable)
        return min(
            movable,
            key=lambda cid: (self._worst_path_through(self._analysis, cid), cid),
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def legalize(self, max_overlaps: int = 10_000) -> LegalizeResult:
        """Resolve all overfull logic slots; returns statistics.

        ``result.success`` is False when free slots run out (the paper's
        early-termination condition for very dense circuits).
        """
        result = LegalizeResult()
        while result.resolved_overlaps < max_overlaps:
            overfull = [
                s for s in self.placement.overfull_slots() if self.placement.arch.is_logic_slot(s)
            ]
            if not overfull:
                break
            congested = overfull[0]
            if not self.placement.free_logic_slots():
                result.success = False
                break
            if self._sta is not None:
                analysis = self._sta.analysis()
            else:
                analysis = analyze(self.netlist, self.placement)
            self._analysis = analysis
            self._cost_cache.clear()
            self._worst_cache.clear()
            targets = self._closest_free_per_quadrant(congested)
            self._strict = True
            scored = [
                self._best_gain_path(analysis, congested, target) for target in targets
            ]
            scored = [
                (gain, path)
                for gain, path in scored
                if path and gain > self._FORBIDDEN / 2
            ]
            if scored:
                _gain, path = max(scored, key=lambda item: item[0])
                self._ripple(path, result)
            else:
                # No ripple corridor avoids critical cells.  Fall back to
                # one exact direct move: relocate the cheapest (occupant,
                # free slot) pair.  Unlike a ripple, a single move's cost
                # is evaluated exactly — no step-interaction surprises on
                # dense, timing-tight regions.
                if not self._direct_move(analysis, congested, result):
                    result.success = False
                    break
            result.resolved_overlaps += 1
        return result

    def _direct_move(
        self, analysis: TimingAnalysis, congested: Slot, result: LegalizeResult
    ) -> bool:
        """Resolve one overlap by the least-damaging 1- or 2-move plan.

        Plans considered, scored by the worst slowest-path among moved
        cells (then total displacement):

        * unify an occupant into a nearby logically equivalent cell when
          no fanout pin's strict slack is violated;
        * move one occupant directly to a free slot;
        * clear an adjacent slot by sending its least-critical occupant
          to a free slot, then shift our occupant one step into it — the
          two-hop escape a plain ripple cannot express without marching
          through critical territory.
        """
        occupants = [
            cid
            for cid in self.placement.cells_at(congested)
            if not self.netlist.cells[cid].ctype.is_pad
        ]
        free = self.placement.free_logic_slots()
        if not occupants or not free:
            return False

        if self.allow_unification and self._try_unify(analysis, occupants, result):
            return True

        def worst_at(cell_id: int, slot: Slot) -> float:
            original = self.placement.slot_of(cell_id)
            try:
                if slot != original:
                    self.placement.place(self.netlist.cells[cell_id], slot)
                return self._worst_path_through(analysis, cell_id)
            finally:
                if slot != original:
                    self.placement.place(self.netlist.cells[cell_id], original)

        arch = self.placement.arch
        best: tuple[float, int, list[tuple[int, Slot]]] | None = None

        def consider(score: float, distance: int, moves: list[tuple[int, Slot]]) -> None:
            nonlocal best
            if best is None or (score, distance) < (best[0], best[1]):
                best = (score, distance, moves)

        for occupant in occupants:
            origin = self.placement.slot_of(occupant)
            for slot in free:
                consider(
                    worst_at(occupant, slot),
                    arch.distance(origin, slot),
                    [(occupant, slot)],
                )
            cx, cy = congested
            for neighbour in ((cx + 1, cy), (cx - 1, cy), (cx, cy + 1), (cx, cy - 1)):
                if not arch.is_logic_slot(neighbour):
                    continue
                blockers = [
                    cid
                    for cid in self.placement.cells_at(neighbour)
                    if not self.netlist.cells[cid].ctype.is_pad
                ]
                if not blockers or self.placement.free_capacity(neighbour) > 0:
                    continue
                blocker = min(
                    blockers,
                    key=lambda cid: (self._worst_path_through(analysis, cid), cid),
                )
                step_worst = worst_at(occupant, neighbour)
                for slot in free:
                    score = max(step_worst, worst_at(blocker, slot))
                    distance = 1 + arch.distance(neighbour, slot)
                    consider(score, distance, [(blocker, slot), (occupant, neighbour)])

        if best is None:
            return False
        _score, _distance, moves = best
        self._cost_cache.clear()
        self._worst_cache.clear()
        for cell_id, slot in moves:
            result.displacement += arch.distance(
                self.placement.slot_of(cell_id), slot
            )
            self.placement.place(self.netlist.cells[cell_id], slot)
            result.ripple_moves += 1
        return True

    def _try_unify(
        self,
        analysis: TimingAnalysis,
        occupants: list[int],
        result: LegalizeResult,
    ) -> bool:
        for cell_id in occupants:
            cell = self.netlist.cells[cell_id]
            for other in self.netlist.equivalent_cells(cell):
                other_slot = self.placement.get(other.cell_id)
                if other_slot is None:
                    continue
                sinks_ok = all(
                    analysis.arrival.get(other.cell_id, 0.0)
                    + self.placement.arch.wire_delay(
                        other_slot, self.placement.slot_of(s)
                    )
                    <= analysis.arrival.get(cell_id, 0.0)
                    + self.placement.arch.wire_delay(
                        self.placement.slot_of(cell_id), self.placement.slot_of(s)
                    )
                    + analysis.connection_slack_strict(cell_id, s, p)
                    + 1e-9
                    for s, p in self.netlist.fanout_pins(cell_id)
                    if self.placement.get(s) is not None
                )
                if sinks_ok:
                    self.netlist.unify(cell, other)
                    self.placement.unplace(cell_id)
                    result.unifications.append((cell_id, other.cell_id))
                    return True
        return False

    def _ripple(self, path: list[Slot], result: LegalizeResult) -> None:
        """Shift occupants one step each along ``path``.

        The displaced occupant of each slot is chosen *before* the
        incoming cell arrives, so no cell ever moves more than one slot
        (the paper's explicit design rule).
        """
        moving = self._pick_occupant(path[0])
        if moving is None:
            return
        for slot in path[1:]:
            cell = self.netlist.cells[moving]
            if self.allow_unification:
                for other_id in self.placement.cells_at(slot):
                    other = self.netlist.cells[other_id]
                    if other.eq_class == cell.eq_class and other_id != moving:
                        # Section V-A: unify and stop the current pass.
                        self.netlist.unify(cell, other)
                        self.placement.unplace(moving)
                        result.unifications.append((moving, other_id))
                        return
            next_moving: int | None = None
            if self.placement.occupancy(slot) >= self.placement.arch.slot_capacity(slot):
                next_moving = self._pick_occupant(slot)
            # The committed move shifts a neighbour of everything it
            # touches: both memo caches are stale from here on.
            self._cost_cache.clear()
            self._worst_cache.clear()
            result.displacement += self.placement.arch.distance(
                self.placement.slot_of(moving), slot
            )
            self.placement.place(cell, slot)
            result.ripple_moves += 1
            if next_moving is None:
                return  # the slot had spare capacity: ripple complete
            moving = next_moving


def legalize_placement(
    netlist: Netlist,
    placement: Placement,
    alpha: float = 0.95,
    allow_unification: bool = True,
) -> LegalizeResult:
    """Convenience wrapper: legalize in place and return statistics."""
    legalizer = TimingDrivenLegalizer(
        netlist, placement, alpha=alpha, allow_unification=allow_unification
    )
    return legalizer.legalize()
