"""Timing-driven placement in the style of T-VPlace [18].

The paper's experimental baseline is "a timing-driven placement from VPR
(Marquardt et al., 2000)".  This module reproduces that algorithm's
structure on our substrate: simulated annealing over swap/displace moves
whose cost is a normalized blend of

* **wiring cost** — per-net q(n)-corrected bounding-box half-perimeter;
* **timing cost** — per-connection ``delay * criticality ** exponent``,
  with criticalities refreshed by a full STA at every temperature.

``place_wirelength_driven`` runs the same engine with the timing weight
zeroed (the configuration [1] accidentally compared against, per the
paper's footnote 5).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.arch.fpga import FpgaArch, Slot
from repro.netlist.netlist import Netlist
from repro.place.annealer import AnnealStats, anneal
from repro.place.hpwl import crossing_factor
from repro.place.initial import random_placement
from repro.place.placement import Placement
from repro.timing.sta import analyze


@dataclass
class _Move:
    """A proposed displace (``cell_b is None``) or swap."""

    cell_a: int
    slot_a: Slot
    cell_b: int | None
    slot_b: Slot
    delta_bb: float = 0.0
    delta_timing: float = 0.0


class PlacementEvaluator:
    """Incremental cost model plugged into :func:`repro.place.annealer.anneal`."""

    def __init__(
        self,
        netlist: Netlist,
        placement: Placement,
        timing_tradeoff: float = 0.5,
        criticality_exponent: float = 8.0,
    ) -> None:
        self.netlist = netlist
        self.placement = placement
        self.arch = placement.arch
        self.timing_tradeoff = timing_tradeoff
        self.criticality_exponent = criticality_exponent

        self._pad_slots = self.arch.pad_slots()
        self._movable = sorted(netlist.cells)
        # Per-net static data.
        self._net_terminals: dict[int, list[int]] = {}
        self._net_q: dict[int, float] = {}
        for net_id, net in netlist.nets.items():
            terminals = ([net.driver] if net.driver is not None else []) + [
                cid for cid, _pin in net.sinks
            ]
            self._net_terminals[net_id] = terminals
            self._net_q[net_id] = crossing_factor(len(terminals))
        # Connections for the timing cost.
        self._conns: list[tuple[int, int, int]] = []
        for net in netlist.nets.values():
            if net.driver is None:
                continue
            for sink, pin in net.sinks:
                self._conns.append((net.driver, sink, pin))
        self._cell_nets: dict[int, list[int]] = {cid: [] for cid in netlist.cells}
        for net_id, terminals in self._net_terminals.items():
            for cid in set(terminals):
                self._cell_nets[cid].append(net_id)
        self._cell_conns: dict[int, list[int]] = {cid: [] for cid in netlist.cells}
        for index, (u, v, _pin) in enumerate(self._conns):
            self._cell_conns[u].append(index)
            if v != u:
                self._cell_conns[v].append(index)

        self._weights = [1.0] * len(self._conns)
        self._net_cost: dict[int, float] = {}
        self._conn_cost = [0.0] * len(self._conns)
        self.bb_cost = 0.0
        self.timing_cost = 0.0
        self._bb_norm = 1.0
        self._timing_norm = 1.0
        self.last_analysis = None
        self._refresh_weights()
        self._recompute_costs()

    # ------------------------------------------------------------------
    # Cost primitives
    # ------------------------------------------------------------------

    def _net_bb_cost(self, net_id: int, moved: dict[int, Slot]) -> float:
        xmin = ymin = 1 << 30
        xmax = ymax = -(1 << 30)
        for cid in self._net_terminals[net_id]:
            x, y = moved.get(cid) or self.placement.slot_of(cid)
            xmin = min(xmin, x)
            xmax = max(xmax, x)
            ymin = min(ymin, y)
            ymax = max(ymax, y)
        if xmax < xmin:
            return 0.0
        return self._net_q[net_id] * ((xmax - xmin) + (ymax - ymin))

    def _connection_cost(self, index: int, moved: dict[int, Slot]) -> float:
        u, v, _pin = self._conns[index]
        slot_u = moved.get(u) or self.placement.slot_of(u)
        slot_v = moved.get(v) or self.placement.slot_of(v)
        delay = self.arch.delay_model.wire_delay(self.arch.distance(slot_u, slot_v))
        return self._weights[index] * delay

    def _recompute_costs(self) -> None:
        self._net_cost = {nid: self._net_bb_cost(nid, {}) for nid in self._net_terminals}
        self.bb_cost = sum(self._net_cost.values())
        for index in range(len(self._conns)):
            self._conn_cost[index] = self._connection_cost(index, {})
        self.timing_cost = sum(self._conn_cost)
        self._bb_norm = max(self.bb_cost, 1e-9)
        self._timing_norm = max(self.timing_cost, 1e-9)

    def _refresh_weights(self) -> None:
        if self.timing_tradeoff <= 0.0 or not self._conns:
            return
        analysis = analyze(self.netlist, self.placement)
        self.last_analysis = analysis
        for index, (u, v, pin) in enumerate(self._conns):
            crit = analysis.criticality(u, v, pin)
            self._weights[index] = crit**self.criticality_exponent

    # ------------------------------------------------------------------
    # MoveEvaluator protocol
    # ------------------------------------------------------------------

    def propose(self, rng: random.Random, range_limit: int) -> _Move | None:
        cell_id = self._movable[rng.randrange(len(self._movable))]
        cell = self.netlist.cells[cell_id]
        slot_a = self.placement.slot_of(cell_id)
        if cell.ctype.is_pad:
            nearby = [
                s
                for s in self._pad_slots
                if s != slot_a and self.arch.distance(s, slot_a) <= 2 * range_limit
            ]
            if not nearby:
                return None
            slot_b = nearby[rng.randrange(len(nearby))]
            capacity = self.arch.pads_per_slot
        else:
            x0, y0 = slot_a
            x = rng.randint(max(1, x0 - range_limit), min(self.arch.width, x0 + range_limit))
            y = rng.randint(max(1, y0 - range_limit), min(self.arch.height, y0 + range_limit))
            slot_b = (x, y)
            if slot_b == slot_a:
                return None
            capacity = self.arch.clb_capacity

        occupants = self.placement.cells_at(slot_b)
        cell_b: int | None = None
        if len(occupants) >= capacity:
            cell_b = occupants[rng.randrange(len(occupants))]
        move = _Move(cell_id, slot_a, cell_b, slot_b)
        self._score(move)
        return move

    def _score(self, move: _Move) -> None:
        moved: dict[int, Slot] = {move.cell_a: move.slot_b}
        if move.cell_b is not None:
            moved[move.cell_b] = move.slot_a
        nets = set(self._cell_nets[move.cell_a])
        conns = set(self._cell_conns[move.cell_a])
        if move.cell_b is not None:
            nets |= set(self._cell_nets[move.cell_b])
            conns |= set(self._cell_conns[move.cell_b])
        move.delta_bb = sum(
            self._net_bb_cost(nid, moved) - self._net_cost[nid] for nid in nets
        )
        move.delta_timing = sum(
            self._connection_cost(i, moved) - self._conn_cost[i] for i in conns
        )

    def delta_cost(self, move: _Move) -> float:
        lam = self.timing_tradeoff
        return lam * move.delta_timing / self._timing_norm + (1.0 - lam) * (
            move.delta_bb / self._bb_norm
        )

    def commit(self, move: _Move) -> None:
        self.placement.place(self.netlist.cells[move.cell_a], move.slot_b)
        if move.cell_b is not None:
            self.placement.place(self.netlist.cells[move.cell_b], move.slot_a)
        nets = set(self._cell_nets[move.cell_a])
        conns = set(self._cell_conns[move.cell_a])
        if move.cell_b is not None:
            nets |= set(self._cell_nets[move.cell_b])
            conns |= set(self._cell_conns[move.cell_b])
        for nid in nets:
            new = self._net_bb_cost(nid, {})
            self.bb_cost += new - self._net_cost[nid]
            self._net_cost[nid] = new
        for index in conns:
            new = self._connection_cost(index, {})
            self.timing_cost += new - self._conn_cost[index]
            self._conn_cost[index] = new

    def on_temperature(self) -> None:
        self._refresh_weights()
        self._recompute_costs()

    def current_cost(self) -> float:
        lam = self.timing_tradeoff
        return lam * self.timing_cost / self._timing_norm + (1.0 - lam) * (
            self.bb_cost / self._bb_norm
        )

    def cost_scale(self) -> float:
        num_nets = max(len(self._net_terminals), 1)
        return self.current_cost() / num_nets


def place_timing_driven(
    netlist: Netlist,
    arch: FpgaArch,
    seed: int = 0,
    inner_scale: float = 1.0,
    timing_tradeoff: float = 0.5,
    criticality_exponent: float = 8.0,
) -> tuple[Placement, AnnealStats]:
    """Produce a timing-driven placement (our VPR stand-in).

    Args:
        netlist: Design to place.
        arch: Target FPGA.
        seed: Determinism seed.
        inner_scale: SA effort dial (VPR ``inner_num``); tests use small
            values, benchmarks ~1.0.
        timing_tradeoff: λ blending timing vs wiring cost.
        criticality_exponent: Sharpness of the criticality weighting.
    """
    placement = random_placement(netlist, arch, seed=seed)
    evaluator = PlacementEvaluator(
        netlist,
        placement,
        timing_tradeoff=timing_tradeoff,
        criticality_exponent=criticality_exponent,
    )
    stats = anneal(
        evaluator,
        num_items=netlist.num_cells,
        max_range=max(arch.width, arch.height),
        seed=seed + 1,
        inner_scale=inner_scale,
    )
    return placement, stats


def place_wirelength_driven(
    netlist: Netlist,
    arch: FpgaArch,
    seed: int = 0,
    inner_scale: float = 1.0,
) -> tuple[Placement, AnnealStats]:
    """Pure bounding-box-driven placement (timing weight zero)."""
    return place_timing_driven(
        netlist, arch, seed=seed, inner_scale=inner_scale, timing_tradeoff=0.0
    )
