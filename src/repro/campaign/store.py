"""The durable campaign result store (``campaign.sqlite``).

One SQLite database per campaign directory, in WAL mode so the
scheduler (single writer) and any number of ``status``/``report``
readers can share it while workers run.  One row per task carries the
full lifecycle: status, attempt count, wall seconds, the result payload
as JSON (a :class:`BaselineRun`/:class:`VariantRun` round-trip dict) and
the traceback of the last failure.  The ``meta`` table stores the
campaign config; the ``wmin`` table is the W_min warm-start cache,
promoted here from the benchmark runner's ad-hoc ``wmin.json`` so warm
starts survive restarts (legacy files are imported on open).

Two deliberate structural choices keep the durability story simple:

* **Only the scheduler's parent process writes task rows** — workers
  report over a pipe.  A SIGKILL anywhere leaves at worst a ``running``
  row, which resume resets; WAL makes each committed row atomic.
* **Connections are per-operation.**  The scheduler forks worker
  processes, and a forked child closing an inherited SQLite descriptor
  would release the parent's POSIX locks out from under it.  With no
  long-lived connection there is never a SQLite fd to inherit.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path

from repro.campaign.model import Task
from repro.paths import ensure_parent_dir

STORE_FILE = "campaign.sqlite"

#: Legacy per-run-dir wmin cache file (pre-campaign JSON format).
LEGACY_WMIN_FILE = "wmin.json"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tasks (
    task_id    TEXT PRIMARY KEY,
    idx        INTEGER NOT NULL,
    kind       TEXT NOT NULL,
    circuit    TEXT NOT NULL,
    algorithm  TEXT,
    seed       INTEGER NOT NULL,
    scale      REAL NOT NULL,
    deps       TEXT NOT NULL DEFAULT '[]',
    status     TEXT NOT NULL DEFAULT 'pending',
    attempts   INTEGER NOT NULL DEFAULT 0,
    total_attempts INTEGER NOT NULL DEFAULT 0,
    seconds    REAL NOT NULL DEFAULT 0.0,
    error      TEXT,
    result     TEXT,
    updated_at REAL
);
CREATE INDEX IF NOT EXISTS tasks_status ON tasks(status);
CREATE TABLE IF NOT EXISTS wmin (
    key   TEXT PRIMARY KEY,
    width INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS task_stats (
    task_id       TEXT PRIMARY KEY,
    payload_bytes INTEGER,
    peak_rss_mb   REAL,
    updated_at    REAL
);
"""


class CampaignStoreError(Exception):
    """Raised on missing/invalid campaign stores."""


class CampaignStore:
    """Facade over one campaign's SQLite database (per-op connections).

    Subclasses may extend the database with additional tables by
    overriding :attr:`SCHEMA_EXTENSIONS` (the serve daemon's job queue
    does this — same file-per-directory idiom, same durability rules)
    and :attr:`FILENAME` to live under a different default name.
    """

    #: Default database filename used by :meth:`in_dir`/:meth:`open_existing`.
    FILENAME = STORE_FILE

    #: Extra ``executescript`` blocks applied after the base schema.
    SCHEMA_EXTENSIONS: tuple[str, ...] = ()

    def __init__(self, path: str | Path) -> None:
        self.path = ensure_parent_dir(path)
        with self._connect() as conn:
            conn.executescript(_SCHEMA)
            for extension in self.SCHEMA_EXTENSIONS:
                conn.executescript(extension)
        self._import_legacy_wmin()

    @contextmanager
    def _connect(self):
        conn = sqlite3.connect(self.path, timeout=30.0)
        conn.row_factory = sqlite3.Row
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        try:
            yield conn
            conn.commit()
        finally:
            conn.close()

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def in_dir(cls, campaign_dir: str | Path) -> "CampaignStore":
        """Open (creating if needed) the store of a campaign directory."""
        return cls(Path(campaign_dir) / cls.FILENAME)

    @classmethod
    def open_existing(cls, campaign_dir: str | Path) -> "CampaignStore":
        """Open the store of an existing campaign; error when absent."""
        path = Path(campaign_dir) / cls.FILENAME
        if not path.exists():
            raise CampaignStoreError(f"no campaign store at {path}")
        return cls(path)

    # -- meta ----------------------------------------------------------

    def set_meta(self, key: str, value) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO meta(key, value) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET value=excluded.value",
                (key, json.dumps(value)),
            )

    def get_meta(self, key: str, default=None):
        with self._connect() as conn:
            row = conn.execute(
                "SELECT value FROM meta WHERE key=?", (key,)
            ).fetchone()
        return default if row is None else json.loads(row["value"])

    # -- tasks ---------------------------------------------------------

    def add_tasks(self, tasks: list[Task]) -> None:
        """Insert the matrix; existing rows (a resumed campaign) are kept."""
        now = time.time()
        with self._connect() as conn:
            conn.executemany(
                "INSERT OR IGNORE INTO tasks"
                "(task_id, idx, kind, circuit, algorithm, seed, scale, deps,"
                " status, updated_at) VALUES(?,?,?,?,?,?,?,?,'pending',?)",
                [
                    (
                        task.task_id,
                        task.index,
                        task.kind,
                        task.circuit,
                        task.algorithm,
                        task.seed,
                        task.scale,
                        json.dumps(list(task.deps)),
                        now,
                    )
                    for task in tasks
                ],
            )

    def tasks(self) -> list[Task]:
        return [
            Task(
                task_id=row["task_id"],
                index=row["idx"],
                kind=row["kind"],
                circuit=row["circuit"],
                seed=row["seed"],
                scale=row["scale"],
                algorithm=row["algorithm"],
                deps=tuple(json.loads(row["deps"])),
            )
            for row in self.task_rows()
        ]

    def task_rows(self) -> list[sqlite3.Row]:
        with self._connect() as conn:
            return conn.execute("SELECT * FROM tasks ORDER BY idx").fetchall()

    def status_of(self, task_id: str) -> str | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT status FROM tasks WHERE task_id=?", (task_id,)
            ).fetchone()
        return None if row is None else row["status"]

    def counts(self) -> dict[str, int]:
        counts = {
            status: 0
            for status in ("pending", "running", "done", "failed", "skipped")
        }
        with self._connect() as conn:
            for row in conn.execute(
                "SELECT status, COUNT(*) AS n FROM tasks GROUP BY status"
            ):
                counts[row["status"]] = row["n"]
        return counts

    def _set(self, task_id: str, **fields) -> None:
        fields["updated_at"] = time.time()
        keys = ", ".join(f"{key}=?" for key in fields)
        with self._connect() as conn:
            conn.execute(
                f"UPDATE tasks SET {keys} WHERE task_id=?",
                (*fields.values(), task_id),
            )

    def mark_running(self, task_id: str, attempt: int) -> None:
        """Task launched; ``attempts`` is per-invocation, total is lifetime."""
        with self._connect() as conn:
            conn.execute(
                "UPDATE tasks SET status='running', attempts=?, "
                "total_attempts=total_attempts+1, updated_at=? "
                "WHERE task_id=?",
                (attempt, time.time(), task_id),
            )

    def mark_done(self, task_id: str, result: dict, seconds: float) -> None:
        self._set(
            task_id,
            status="done",
            seconds=seconds,
            error=None,
            result=json.dumps(result),
        )

    def mark_pending(self, task_id: str, error: str | None = None) -> None:
        """Back to the queue (retry after failure, or resume reset)."""
        self._set(task_id, status="pending", error=error)

    def mark_failed(self, task_id: str, error: str, seconds: float = 0.0) -> None:
        self._set(task_id, status="failed", error=error, seconds=seconds)

    def mark_skipped(self, task_id: str, reason: str) -> None:
        self._set(task_id, status="skipped", error=reason)

    def result_of(self, task_id: str) -> dict | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT result FROM tasks WHERE task_id=? AND status='done'",
                (task_id,),
            ).fetchone()
        if row is None or row["result"] is None:
            return None
        return json.loads(row["result"])

    def reset_incomplete(self) -> int:
        """Resume entry point: everything not ``done`` goes back to pending.

        Covers ``running`` rows orphaned by a SIGKILL as well as
        ``failed``/``skipped`` rows, which get a fresh attempt budget on
        the next invocation.  Returns the number of rows reset.
        """
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE tasks SET status='pending', attempts=0 "
                "WHERE status != 'done'"
            )
            return cursor.rowcount

    # -- per-task IPC/memory stats ------------------------------------

    def record_task_stats(
        self,
        task_id: str,
        *,
        payload_bytes: int | None = None,
        peak_rss_mb: float | None = None,
    ) -> None:
        """Upsert a task's IPC payload size and worker peak RSS.

        The two fields arrive at different times (payload at launch,
        RSS at completion), so each update keeps whatever the other
        call already wrote.
        """
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO task_stats(task_id, payload_bytes, peak_rss_mb,"
                " updated_at) VALUES(?,?,?,?)"
                " ON CONFLICT(task_id) DO UPDATE SET"
                " payload_bytes=COALESCE(excluded.payload_bytes, payload_bytes),"
                " peak_rss_mb=COALESCE(excluded.peak_rss_mb, peak_rss_mb),"
                " updated_at=excluded.updated_at",
                (task_id, payload_bytes, peak_rss_mb, time.time()),
            )

    def task_stats(self) -> dict[str, dict]:
        """All recorded stats, keyed by task id."""
        with self._connect() as conn:
            return {
                row["task_id"]: {
                    "payload_bytes": row["payload_bytes"],
                    "peak_rss_mb": row["peak_rss_mb"],
                }
                for row in conn.execute(
                    "SELECT task_id, payload_bytes, peak_rss_mb FROM task_stats"
                )
            }

    # -- W_min warm-start cache ---------------------------------------

    def wmin_get(self, key: str) -> int | None:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT width FROM wmin WHERE key=?", (key,)
            ).fetchone()
        return None if row is None else row["width"]

    def wmin_set(self, key: str, width: int) -> None:
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO wmin(key, width) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET width=excluded.width",
                (key, width),
            )

    def wmin_all(self) -> dict[str, int]:
        with self._connect() as conn:
            return {
                row["key"]: row["width"]
                for row in conn.execute("SELECT key, width FROM wmin")
            }

    def _import_legacy_wmin(self) -> None:
        """One-time import of a pre-campaign ``wmin.json`` cache file."""
        legacy = self.path.parent / LEGACY_WMIN_FILE
        if not legacy.exists():
            return
        try:
            data = json.loads(legacy.read_text())
        except (OSError, ValueError):
            return
        for key, width in data.items():
            if isinstance(width, int) and self.wmin_get(key) is None:
                self.wmin_set(key, width)
        try:
            os.replace(legacy, legacy.with_suffix(".json.imported"))
        except OSError:
            pass
