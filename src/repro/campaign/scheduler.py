"""Process-pool task scheduler with timeout, retry and degradation.

Execution model: one worker **process per task attempt**.  A worker
imports nothing from the scheduler's state — it receives a JSON-ready
payload over a pipe, runs the task (a ``bench.runner`` baseline or
variant), and sends back either ``("ok", result_dict)`` or ``("error",
traceback_text)``.  The parent is the only store writer, so a worker can
be SIGKILLed at any instant without corrupting the campaign: the parent
observes the dead pipe and records a failure.

Fault model:

* **crash / raised exception** — traceback recorded; retried up to
  ``retries`` times with exponential backoff (``backoff * 2**(attempt-1)``
  seconds).
* **timeout** — the worker is killed after ``timeout`` seconds and the
  attempt counts as a failure.
* **exhausted retries** — the task is marked ``failed`` with its last
  traceback and every transitive dependent is marked ``skipped``; the
  campaign keeps running everything else (graceful degradation, never a
  crash).

Fault injection for tests comes in two equivalent forms: the
``CampaignConfig.faults`` map (``task_id -> N`` fail the first N
attempts; negative N hangs instead, exercising the timeout path), which
survives serialization into the store, and a ``fault_hook`` callable on
the scheduler for in-process tests.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from collections import defaultdict, deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path

from repro.campaign.model import CampaignConfig, Task, artifact_name
from repro.campaign.store import CampaignStore

#: Injected-fault codes carried in worker payloads.
_FAULT_NONE, _FAULT_RAISE, _FAULT_HANG = 0, 1, -1

#: Subdirectories of the campaign dir collecting per-task artifacts.
PERF_DIR = "perf"
TRACE_DIR = "trace"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def execute_task(payload: dict) -> dict:
    """Run one task described by a scheduler payload; returns result dict.

    Importable directly (tests, debugging): everything the task needs is
    in the payload — the task row, the execution knobs, the serialized
    baseline for variants, and the W_min warm-start hint for baselines.
    """
    task = payload["task"]
    inject = payload.get("inject", _FAULT_NONE)
    if inject == _FAULT_HANG:
        time.sleep(3600.0)
    if inject == _FAULT_RAISE:
        raise RuntimeError(
            f"injected fault in {task['task_id']} "
            f"(attempt {payload.get('attempt', 1)})"
        )

    from repro.bench.runner import BaselineRun, run_variant, run_vpr_baseline
    from repro.perf import PERF, sample_peak_rss

    perf_on = payload.get("perf", False)
    trace_on = payload.get("trace", False)
    campaign_dir = payload.get("campaign_dir")
    store_path = payload.get("netlist_store")
    if perf_on:
        PERF.reset()
        PERF.enable()
    if trace_on:
        from repro.trace import start_tracing

        start_tracing()
    try:
        if task["kind"] == "baseline":
            run = run_vpr_baseline(
                task["circuit"],
                scale=task["scale"],
                seed=task["seed"],
                route_jobs=payload.get("route_jobs", 1),
                wmin_engine=payload.get("wmin_engine", "fast"),
                start_width=payload.get("start_width"),
                route_kernel=payload.get("route_kernel"),
                route_search=payload.get("route_search"),
                netlist_store=store_path,
            )
            if store_path is None:
                return run.to_dict()
            # Zero-copy mode: the design is already in the shared store;
            # park the placement next to it and return scalars + refs so
            # the campaign row (and the variant payloads built from it)
            # never carry a serialized netlist.
            from repro.netlist.store import NetlistStore, design_key

            nl_store = NetlistStore(store_path)
            dkey = design_key(task["circuit"], task["scale"])
            nl_store.save_placement(task["task_id"], run.placement, design_key=dkey)
            return run.to_dict(store_refs=(dkey, task["task_id"]))
        baseline_data = payload["baseline"]
        nl_store = None
        if "netlist_ref" in baseline_data:
            from repro.netlist.store import NetlistStore

            if store_path is None:
                raise RuntimeError(
                    f"baseline of {task['task_id']} references a netlist "
                    f"store but the campaign has none configured"
                )
            nl_store = NetlistStore(store_path)
        baseline = BaselineRun.from_dict(baseline_data, store=nl_store)
        run = run_variant(
            baseline,
            task["algorithm"],
            effort=payload.get("effort", 1.0),
            seed=task["seed"],
            route_jobs=payload.get("route_jobs", 1),
            route_kernel=payload.get("route_kernel"),
            route_search=payload.get("route_search"),
        )
        return run.to_dict()
    finally:
        name = artifact_name(task["task_id"])
        if perf_on:
            PERF.record_max("peak_rss_mb", sample_peak_rss())
            PERF.disable()
            if campaign_dir is not None:
                PERF.write_snapshot(Path(campaign_dir) / PERF_DIR / f"{name}.json")
        if trace_on and campaign_dir is not None:
            from repro.trace import stop_tracing

            stop_tracing(
                Path(campaign_dir) / TRACE_DIR / f"{name}.json",
                metadata={"task": task["task_id"]},
            )


def _worker_main(conn, payload: dict) -> None:
    """Process entry point: run the task, report over the pipe, exit.

    The success message is a 3-tuple: result dict plus a small stats
    dict (worker peak RSS) the parent folds into the campaign store's
    ``task_stats`` table.
    """
    from repro.perf import sample_peak_rss

    try:
        result = execute_task(payload)
        conn.send(("ok", result, {"peak_rss_mb": sample_peak_rss()}))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


@dataclass
class _Handle:
    """Bookkeeping for one in-flight worker."""

    task: Task
    process: object
    conn: object
    attempt: int
    started: float
    deadline: float | None


@dataclass
class CampaignSummary:
    """Outcome counts of one scheduler invocation."""

    total: int
    done: int = 0
    failed: int = 0
    skipped: int = 0
    pending: int = 0
    seconds: float = 0.0
    failures: dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.done == self.total


class CampaignScheduler:
    """Drives a campaign's task graph to completion on worker processes.

    The store is the single source of truth: the scheduler loads the
    task rows, runs everything not ``done``, and records every state
    transition as it happens, so killing the *scheduler* at any point
    leaves a store that :meth:`run` (after ``reset_incomplete``) picks
    up with only unfinished work.
    """

    def __init__(
        self,
        store: CampaignStore,
        config: CampaignConfig,
        *,
        fault_hook=None,
        echo=None,
        mp_context=None,
    ) -> None:
        self.store = store
        self.config = config
        self.campaign_dir = store.path.parent
        self.fault_hook = fault_hook
        self.echo = echo or (lambda message: None)
        self._ctx = mp_context or multiprocessing.get_context()
        self._by_id: dict[str, Task] = {}
        self._dependents: dict[str, list[str]] = defaultdict(list)
        self._status: dict[str, str] = {}
        self._attempts: dict[str, int] = defaultdict(int)
        self._lifetime: dict[str, int] = {}
        self._queue: deque[str] = deque()
        self._delayed: list[tuple[float, str]] = []
        self._running: dict[str, _Handle] = {}

    # -- main loop -----------------------------------------------------

    def run(self) -> CampaignSummary:
        start = time.monotonic()
        tasks = self.store.tasks()
        self._prebuild_designs(tasks)
        self._by_id = {task.task_id: task for task in tasks}
        self._dependents.clear()
        for task in tasks:
            for dep in task.deps:
                self._dependents[dep].append(task.task_id)
        rows = self.store.task_rows()
        self._status = {row["task_id"]: row["status"] for row in rows}
        self._lifetime = {
            row["task_id"]: row["total_attempts"] for row in rows
        }
        # Rows left 'running' by a killed scheduler: nobody owns them now.
        for task_id, status in self._status.items():
            if status == "running":
                self.store.mark_pending(task_id)
                self._status[task_id] = "pending"
        self._queue = deque(
            task.task_id for task in tasks
            if self._status[task.task_id] == "pending"
        )
        try:
            while self._queue or self._delayed or self._running:
                self._promote_delayed()
                launched = self._launch_ready()
                if self._running:
                    self._poll_running()
                elif self._delayed:
                    next_at = min(at for at, _ in self._delayed)
                    time.sleep(min(0.05, max(0.0, next_at - time.monotonic())))
                elif self._queue and not launched:
                    # Every queued task waits on a dep that no longer has
                    # an owner — cannot happen with a well-formed graph;
                    # bail out rather than spin forever.
                    for task_id in list(self._queue):
                        self._finish(
                            task_id, "skipped",
                            "skipped: dependency never completed",
                        )
                    self._queue.clear()
        finally:
            self._kill_all()
        return self._summarize(time.monotonic() - start)

    def _prebuild_designs(self, tasks: list[Task]) -> None:
        """Zero-copy mode: stream every design into the shared store.

        Runs in the parent before any worker launches, so workers only
        ever *read* the netlist store (the single-writer moment is here,
        not under worker concurrency).  Designs already present — a
        resumed campaign, or a store built beforehand with ``repro
        netlist build`` — are kept as-is.
        """
        if self.config.netlist_store is None:
            return
        from repro.bench.suite import ensure_suite_design
        from repro.netlist.store import NetlistStore

        nl_store = NetlistStore(self.config.netlist_store)
        seen: set[tuple[str, float]] = set()
        for task in tasks:
            coords = (task.circuit, task.scale)
            if coords in seen:
                continue
            seen.add(coords)
            ensure_suite_design(nl_store, task.circuit, task.scale)
        self.echo(
            f"netlist store {nl_store.path}: "
            f"{len(seen)} design(s) ready"
        )

    # -- scheduling ----------------------------------------------------

    def _promote_delayed(self) -> None:
        now = time.monotonic()
        due = [task_id for at, task_id in self._delayed if at <= now]
        if due:
            self._delayed = [
                (at, task_id) for at, task_id in self._delayed if at > now
            ]
            self._queue.extend(due)

    def _launch_ready(self) -> int:
        launched = 0
        for task_id in list(self._queue):
            if len(self._running) >= max(1, self.config.jobs):
                break
            task = self._by_id[task_id]
            dep_status = [self._status[dep] for dep in task.deps]
            bad = [
                dep for dep, status in zip(task.deps, dep_status)
                if status in ("failed", "skipped")
            ]
            if bad:
                self._queue.remove(task_id)
                self._finish(
                    task_id, "skipped",
                    f"skipped: dependency {bad[0]} {self._status[bad[0]]}",
                )
                continue
            if all(status == "done" for status in dep_status):
                self._queue.remove(task_id)
                self._launch(task)
                launched += 1
        return launched

    def _launch(self, task: Task) -> None:
        attempt = self._attempts[task.task_id] + 1
        self._attempts[task.task_id] = attempt
        self._lifetime[task.task_id] = self._lifetime.get(task.task_id, 0) + 1
        payload = self._payload(task, attempt)
        import pickle

        self.store.record_task_stats(
            task.task_id, payload_bytes=len(pickle.dumps(payload))
        )
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn, payload), daemon=True
        )
        process.start()
        child_conn.close()
        now = time.monotonic()
        deadline = (
            now + self.config.timeout if self.config.timeout else None
        )
        self._running[task.task_id] = _Handle(
            task=task,
            process=process,
            conn=parent_conn,
            attempt=attempt,
            started=now,
            deadline=deadline,
        )
        self.store.mark_running(task.task_id, attempt)
        self._status[task.task_id] = "running"

    def _payload(self, task: Task, attempt: int) -> dict:
        config = self.config
        payload = {
            "task": task.to_row(),
            "attempt": attempt,
            "effort": config.effort,
            "route_jobs": config.route_jobs,
            "wmin_engine": config.wmin_engine,
            "route_kernel": config.route_kernel,
            "route_search": config.route_search,
            "perf": config.perf,
            "trace": config.trace,
            "campaign_dir": str(self.campaign_dir),
            "netlist_store": config.netlist_store,
            "inject": self._fault_code(task.task_id, attempt),
        }
        if task.kind == "baseline":
            from repro.bench.runner import wmin_cache_key

            payload["start_width"] = self.store.wmin_get(
                wmin_cache_key(task.circuit, task.scale, task.seed)
            )
        else:
            payload["baseline"] = self.store.result_of(task.deps[0])
        return payload

    def _fault_code(self, task_id: str, attempt: int) -> int:
        """Injected-fault decision for one launch.

        The ``fault_hook`` callable sees the per-invocation attempt; the
        serialized ``config.faults`` spec is counted against *lifetime*
        attempts, so an injected transient fault (e.g. ``N=1`` with
        ``retries=0``) fails a campaign run but is recovered by resume —
        exactly the shape of a real transient crash.
        """
        if self.fault_hook is not None:
            code = self.fault_hook(task_id, attempt)
            if code:
                return code
        spec = self.config.faults.get(task_id, 0)
        lifetime = self._lifetime.get(task_id, attempt)
        if spec > 0 and lifetime <= spec:
            return _FAULT_RAISE
        if spec < 0 and lifetime <= -spec:
            return _FAULT_HANG
        return _FAULT_NONE

    # -- completion handling -------------------------------------------

    def _poll_running(self) -> None:
        conns = [handle.conn for handle in self._running.values()]
        ready = set(_conn_wait(conns, timeout=0.05))
        now = time.monotonic()
        for handle in list(self._running.values()):
            if handle.conn in ready:
                self._reap(handle)
            elif handle.deadline is not None and now > handle.deadline:
                handle.process.kill()
                handle.process.join()
                self._close(handle)
                self._record_failure(
                    handle,
                    f"task timed out after {self.config.timeout:g}s "
                    f"(worker killed)",
                )
            elif not handle.process.is_alive():
                # Died without a pipe event getting through (rare; the
                # closed pipe usually surfaces via wait()).
                self._reap(handle)

    def _reap(self, handle: _Handle) -> None:
        """Collect a worker whose pipe is readable or which has exited."""
        stats = None
        try:
            message = handle.conn.recv()
            kind, payload = message[0], message[1]
            if len(message) > 2:  # ("ok", result, stats) since task_stats
                stats = message[2]
        except (EOFError, OSError):
            handle.process.join()
            kind, payload = "error", (
                f"worker exited with code {handle.process.exitcode} "
                f"before reporting a result"
            )
        handle.process.join()
        self._close(handle)
        if kind == "ok":
            self._record_done(handle, payload, stats)
        else:
            self._record_failure(handle, payload)

    def _close(self, handle: _Handle) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        self._running.pop(handle.task.task_id, None)

    def _record_done(
        self, handle: _Handle, result: dict, stats: dict | None = None
    ) -> None:
        task = handle.task
        seconds = time.monotonic() - handle.started
        self.store.mark_done(task.task_id, result, seconds)
        self._status[task.task_id] = "done"
        if stats and stats.get("peak_rss_mb") is not None:
            self.store.record_task_stats(
                task.task_id, peak_rss_mb=stats["peak_rss_mb"]
            )
            from repro.perf import PERF

            if PERF.enabled:
                PERF.record_max("peak_rss_mb", stats["peak_rss_mb"])
        if task.kind == "baseline":
            from repro.bench.runner import wmin_cache_key

            self.store.wmin_set(
                wmin_cache_key(task.circuit, task.scale, task.seed),
                result["min_width"],
            )
        self.echo(f"done    {task.task_id} ({seconds:.1f}s)")

    def _record_failure(self, handle: _Handle, error: str) -> None:
        task = handle.task
        seconds = time.monotonic() - handle.started
        if handle.attempt < self.config.max_attempts:
            delay = self.config.backoff * (2 ** (handle.attempt - 1))
            self.store.mark_pending(task.task_id, error=error)
            self._status[task.task_id] = "pending"
            self._delayed.append((time.monotonic() + delay, task.task_id))
            self.echo(
                f"retry   {task.task_id} (attempt {handle.attempt} failed; "
                f"next in {delay:g}s)"
            )
        else:
            self.store.mark_failed(task.task_id, error, seconds)
            self._status[task.task_id] = "failed"
            self.echo(
                f"failed  {task.task_id} after {handle.attempt} attempts"
            )
            self._skip_dependents(task.task_id)

    def _skip_dependents(self, task_id: str) -> None:
        for dep_id in self._dependents.get(task_id, ()):  # graph is a DAG
            if self._status.get(dep_id) in ("done", "failed", "skipped"):
                continue
            if dep_id in self._queue:
                self._queue.remove(dep_id)
            self._delayed = [
                (at, tid) for at, tid in self._delayed if tid != dep_id
            ]
            self._finish(
                dep_id, "skipped",
                f"skipped: dependency {task_id} {self._status[task_id]}",
            )
            self._skip_dependents(dep_id)

    def _finish(self, task_id: str, status: str, reason: str) -> None:
        if status == "skipped":
            self.store.mark_skipped(task_id, reason)
        else:
            self.store.mark_failed(task_id, reason)
        self._status[task_id] = status
        self.echo(f"{status:<7} {task_id} ({reason})")

    def _kill_all(self) -> None:
        """Interrupt path: kill workers, hand their tasks back to pending."""
        for handle in list(self._running.values()):
            handle.process.kill()
            handle.process.join()
            self._close(handle)
            self.store.mark_pending(handle.task.task_id, error="interrupted")
            self._status[handle.task.task_id] = "pending"

    def _summarize(self, seconds: float) -> CampaignSummary:
        counts = self.store.counts()
        failures = {
            row["task_id"]: row["error"] or ""
            for row in self.store.task_rows()
            if row["status"] in ("failed", "skipped")
        }
        return CampaignSummary(
            total=sum(counts.values()),
            done=counts["done"],
            failed=counts["failed"],
            skipped=counts["skipped"],
            pending=counts["pending"] + counts["running"],
            seconds=seconds,
            failures=failures,
        )
