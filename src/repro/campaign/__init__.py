"""Campaign engine: fault-tolerant, parallel, resumable experiment runs.

The paper's Section VII evaluation is a matrix — circuits × algorithms ×
seeds — that the sequential benchmark runner executes as one long
in-process loop.  This package turns that matrix into an explicit task
graph (baseline tasks feeding variant tasks), executes it on a
process-pool scheduler with per-task timeouts and bounded retry, and
records every outcome in a durable SQLite store, so a killed campaign
resumes where it left off and final tables are rendered *from the
store* — byte-identical to the sequential runner's output.

Modules:

* :mod:`repro.campaign.model` — task dataclasses, deterministic task
  ids, matrix construction, campaign config.
* :mod:`repro.campaign.store` — the ``campaign.sqlite`` result store
  (WAL mode, one row per task) plus the promoted W_min warm-start cache.
* :mod:`repro.campaign.scheduler` — process-pool execution: timeout,
  retry with exponential backoff, dependent-skip degradation, fault
  injection for tests.
* :mod:`repro.campaign.report` — render tables/status from the store.
"""

from repro.campaign.model import (
    CampaignConfig,
    Task,
    baseline_task_id,
    build_matrix,
    variant_task_id,
)
from repro.campaign.report import render_report, render_status
from repro.campaign.scheduler import CampaignScheduler, CampaignSummary
from repro.campaign.store import STORE_FILE, CampaignStore

__all__ = [
    "CampaignConfig",
    "CampaignScheduler",
    "CampaignStore",
    "CampaignSummary",
    "STORE_FILE",
    "Task",
    "baseline_task_id",
    "build_matrix",
    "render_report",
    "render_status",
    "variant_task_id",
]
