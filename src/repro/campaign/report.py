"""Render campaign tables and status from the durable store.

The acceptance bar for the whole subsystem lives here: for a completed
matrix, ``render_report(store, "table2")`` must be **byte-identical** to
what ``python -m repro.bench.runner table2`` prints for the same
circuits/algorithms/seed — the rows travel store → JSON →
``BaselineRun``/``VariantRun`` round-trip → the *same*
:mod:`repro.bench.tables` formatters the sequential runner uses, in the
same matrix order (task ``idx`` is the sequential loop order).
"""

from __future__ import annotations

from repro.campaign.model import CampaignConfig, Task
from repro.campaign.store import CampaignStore, CampaignStoreError

REPORT_EXPERIMENTS = ("table1", "table2", "table3")


def load_config(store: CampaignStore) -> CampaignConfig:
    data = store.get_meta("config")
    if data is None:
        raise CampaignStoreError("store has no campaign config recorded")
    return CampaignConfig.from_dict(data)


def gather_runs(store: CampaignStore, seed: int | None = None):
    """Reconstruct runs for one seed, in sequential-runner order.

    Returns ``(config, baselines, runs_by_algorithm, missing)`` where
    ``missing`` lists task ids without a stored result (failed, skipped
    or still pending).  Reconstruction is a full serialization
    round-trip through :meth:`BaselineRun.from_dict` /
    :meth:`VariantRun.from_dict`.
    """
    from repro.bench.runner import BaselineRun, VariantRun

    config = load_config(store)
    if seed is None:
        seed = config.seeds[0]
    if seed not in config.seeds:
        raise CampaignStoreError(
            f"seed {seed} not in campaign seeds {config.seeds}"
        )
    baselines: list = []
    runs_by_algorithm: dict[str, list] = {
        algorithm: [] for algorithm in config.algorithms
    }
    missing: list[str] = []
    for task in store.tasks():
        if task.seed != seed:
            continue
        result = store.result_of(task.task_id)
        if result is None:
            missing.append(task.task_id)
            continue
        if task.kind == "baseline":
            baselines.append(BaselineRun.from_dict(result))
        else:
            runs_by_algorithm[task.algorithm].append(
                VariantRun.from_dict(result)
            )
    return config, baselines, runs_by_algorithm, missing


def render_report(
    store: CampaignStore,
    experiment: str = "table2",
    *,
    seed: int | None = None,
    allow_partial: bool = False,
) -> str:
    """The sequential runner's table text, rendered from the store."""
    from repro.bench import tables

    if experiment not in REPORT_EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment!r}; "
            f"choose from {REPORT_EXPERIMENTS}"
        )
    config, baselines, runs_by_algorithm, missing = gather_runs(
        store, seed=seed
    )
    if missing and not allow_partial:
        raise CampaignStoreError(
            f"{len(missing)} task(s) have no result "
            f"({', '.join(missing[:5])}{'…' if len(missing) > 5 else ''}); "
            f"resume the campaign or pass allow_partial"
        )
    if experiment == "table1":
        return tables.format_table1(baselines, scale=config.scale)
    if experiment == "table2":
        return tables.format_table2(runs_by_algorithm, scale=config.scale)
    return tables.format_table3(runs_by_algorithm, scale=config.scale)


def render_status(store: CampaignStore) -> str:
    """Human-readable campaign progress from the store."""
    rows = store.task_rows()
    counts = store.counts()
    total = len(rows)
    done_seconds = sum(
        row["seconds"] for row in rows if row["status"] == "done"
    )
    lines = [
        f"campaign: {total} tasks — "
        + ", ".join(
            f"{counts[status]} {status}"
            for status in ("done", "running", "pending", "failed", "skipped")
        )
        + f" ({done_seconds:.1f}s of completed work)"
    ]
    for row in rows:
        if row["status"] in ("running", "failed", "skipped"):
            note = (row["error"] or "").strip().splitlines()
            suffix = f" — {note[-1]}" if note else ""
            lines.append(
                f"  {row['status']:<8} {row['task_id']} "
                f"(attempts {row['attempts']}){suffix}"
            )
    cache = store.wmin_all()
    if cache:
        lines.append(f"wmin cache: {len(cache)} warm-start entries")
    stats = store.task_stats()
    payloads = [
        s["payload_bytes"] for s in stats.values()
        if s["payload_bytes"] is not None
    ]
    rss = [
        s["peak_rss_mb"] for s in stats.values()
        if s["peak_rss_mb"] is not None
    ]
    if payloads or rss:
        parts = []
        if payloads:
            parts.append(
                f"payload max {max(payloads)} B / "
                f"mean {sum(payloads) / len(payloads):.0f} B"
            )
        if rss:
            parts.append(f"worker peak RSS max {max(rss):.1f} MB")
        lines.append(f"task stats: {'; '.join(parts)}")
    return "\n".join(lines)


def campaign_tasks_for_status(store: CampaignStore) -> list[Task]:
    """Convenience for tooling: the task graph as model objects."""
    return store.tasks()
