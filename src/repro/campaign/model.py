"""Task model for the campaign engine.

A campaign is the benchmark matrix made explicit: one **baseline** task
per (circuit, seed) — generate, place, find W_min, route — and one
**variant** task per (circuit, seed, algorithm) that depends on its
baseline.  Task ids are deterministic functions of the coordinates, so
re-building the matrix of an interrupted campaign maps onto exactly the
same rows in the store and resume can tell finished work from pending
work without any bookkeeping beyond the rows themselves.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: Task lifecycle states recorded in the store.
STATUSES = ("pending", "running", "done", "failed", "skipped")


def _fmt_scale(scale: float) -> str:
    return f"{scale:g}"


def baseline_task_id(circuit: str, scale: float, seed: int) -> str:
    """Deterministic id of a baseline task, e.g. ``baseline/tseng@0.08/s0``."""
    return f"baseline/{circuit}@{_fmt_scale(scale)}/s{seed}"


def variant_task_id(circuit: str, scale: float, seed: int, algorithm: str) -> str:
    """Deterministic id of a variant task, e.g. ``variant/tseng@0.08/s0/rt``."""
    return f"variant/{circuit}@{_fmt_scale(scale)}/s{seed}/{algorithm}"


def artifact_name(task_id: str) -> str:
    """A filesystem-safe name for per-task artifacts (perf/trace files)."""
    return task_id.replace("/", "_")


@dataclass(frozen=True)
class Task:
    """One node of the campaign task graph."""

    task_id: str
    index: int  # position in the sequential runner's loop order
    kind: str  # "baseline" | "variant"
    circuit: str
    seed: int
    scale: float
    algorithm: str | None = None  # variants only
    deps: tuple[str, ...] = ()

    def to_row(self) -> dict:
        row = asdict(self)
        row["deps"] = list(self.deps)
        return row

    @classmethod
    def from_row(cls, row: dict) -> "Task":
        return cls(
            task_id=row["task_id"],
            index=row["index"],
            kind=row["kind"],
            circuit=row["circuit"],
            seed=row["seed"],
            scale=row["scale"],
            algorithm=row["algorithm"],
            deps=tuple(row["deps"]),
        )


@dataclass
class CampaignConfig:
    """Everything a campaign needs to (re)execute its matrix.

    Stored verbatim in the store's ``meta`` table so ``resume`` runs
    under exactly the configuration ``run`` started with (``jobs`` may
    be overridden at resume time — it never changes results).

    ``retries`` counts *re-runs after the first failure*, so a task is
    attempted at most ``retries + 1`` times per campaign invocation.
    ``faults`` is the test-facing fault-injection hook: task id → number
    of injected failures; a negative count makes the task hang instead
    of raise (exercising the timeout path).

    ``netlist_store`` is the zero-copy worker mode: a path to a shared
    :mod:`repro.netlist.store` database.  The scheduler streams every
    design into it before launching workers; workers open it read-only
    and task payloads carry the path instead of pickled netlists.
    Results and reports are byte-identical either way.
    """

    circuits: list[str]
    algorithms: list[str]
    seeds: list[int] = field(default_factory=lambda: [0])
    scale: float = 0.08
    effort: float = 1.0
    route_jobs: int = 1
    wmin_engine: str = "fast"
    route_kernel: str | None = None
    route_search: str | None = None
    jobs: int = 1
    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.5
    perf: bool = False
    trace: bool = False
    faults: dict[str, int] = field(default_factory=dict)
    netlist_store: str | None = None

    def __post_init__(self) -> None:
        from repro.bench.runner import ALGORITHMS

        unknown = sorted(set(self.algorithms) - set(ALGORITHMS))
        if unknown:
            raise ValueError(
                f"unknown algorithm(s): {', '.join(unknown)}; "
                f"valid: {', '.join(ALGORITHMS)}"
            )
        if not self.circuits:
            raise ValueError("campaign needs at least one circuit")
        if not self.seeds:
            raise ValueError("campaign needs at least one seed")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignConfig":
        return cls(**data)

    @property
    def max_attempts(self) -> int:
        return self.retries + 1


def build_matrix(config: CampaignConfig) -> list[Task]:
    """The task graph of a campaign, in the sequential runner's order.

    Seed-major, then circuit, then algorithm — for any single seed this
    is exactly the loop order of ``bench.runner table2/table3``, which
    is what makes a store-rendered report byte-identical to the
    sequential output.
    """
    tasks: list[Task] = []
    for seed in config.seeds:
        for circuit in config.circuits:
            base_id = baseline_task_id(circuit, config.scale, seed)
            tasks.append(
                Task(
                    task_id=base_id,
                    index=len(tasks),
                    kind="baseline",
                    circuit=circuit,
                    seed=seed,
                    scale=config.scale,
                )
            )
            for algorithm in config.algorithms:
                tasks.append(
                    Task(
                        task_id=variant_task_id(
                            circuit, config.scale, seed, algorithm
                        ),
                        index=len(tasks),
                        kind="variant",
                        circuit=circuit,
                        seed=seed,
                        scale=config.scale,
                        algorithm=algorithm,
                        deps=(base_id,),
                    )
                )
    return tasks
