"""Command-line flow driver: ``python -m repro <subcommand>``.

Subcommands::

    repro run        end-to-end flow: place -> replicate -> (route)
    repro route      route an existing placement and report timing
    repro bench      forward to the benchmark runner (tables/figures)
    repro resume     continue a checkpointed run directory
    repro trace-view summarize a Chrome trace produced by --trace
    repro serve      run the replication service daemon
    repro submit     submit a job to a running service
    repro jobs       list/inspect/cancel jobs on a running service

Examples::

    python -m repro run --circuit tseng --scale 0.08 --algorithm lex-3 --route
    python -m repro run --circuit tseng --run-dir runs/t1 --trace \\
        --checkpoint-every 2
    python -m repro resume runs/t1
    python -m repro trace-view runs/t1/trace.json
    python -m repro bench table2 --scale 0.08 --algorithms rt,lex-3

The pre-1.1 flat form (``python -m repro --circuit tseng ...``) still
works: it is rewritten to ``run`` with a deprecation notice on stderr.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro import api
from repro.bench.suite import SPEC_BY_NAME
from repro.core.checkpoint import CheckpointError
from repro.core.config import RunConfig
from repro.perf import PERF
from repro.trace import summarize_trace
from repro.viz import render_history, render_placement

LEGACY_NOTICE = (
    "repro: flat flags are deprecated; use 'python -m repro run ...' "
    "(rewriting to the 'run' subcommand)"
)

#: Exit codes: user errors get distinct nonzero codes and a one-line
#: stderr message — never a traceback.
EXIT_FAILURE = 1   # the operation itself failed (flow error, failed job)
EXIT_USAGE = 2     # bad flag combination / invalid argument value
EXIT_MISSING = 3   # a named input does not exist (file, store, daemon)


class CliError(Exception):
    """User-facing CLI error: one stderr line + a specific exit code."""

    def __init__(self, message: str, code: int = EXIT_FAILURE) -> None:
        super().__init__(message)
        self.code = code


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--blif", type=Path, help="input BLIF netlist")
    source.add_argument(
        "--circuit",
        choices=sorted(SPEC_BY_NAME),
        help="generate an MCNC-calibrated suite circuit",
    )
    parser.add_argument("--scale", type=float, default=0.08,
                        help="suite-circuit scale (with --circuit)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--place-effort", type=float, default=0.3,
                        dest="place_effort", help="annealer inner_num scale")
    parser.add_argument("--in-placement", type=Path,
                        help="start from a saved placement instead of SA")
    parser.add_argument("--netlist-store", type=Path, default=None,
                        dest="netlist_store", metavar="DB",
                        help="load the design from (building into, on first "
                        "use) this netlist store database; results are "
                        "byte-identical with and without it")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Placement-coupled logic replication flow "
        "(Hrkic/Lillis/Beraudo, DAC'04).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="place -> replicate -> (route)")
    _add_input_arguments(run)
    run.add_argument(
        "--algorithm",
        default="rt",
        help="replication variant: rt, lex-2..lex-5, lex-mc, or 'none'",
    )
    run.add_argument("--effort", type=float, default=1.0,
                     help="replication-flow effort dial")
    run.add_argument("--batch-sinks", type=int, default=1, dest="batch_sinks",
                     help="tied critical endpoints embedded per iteration "
                     "(1 = paper's one-sink loop)")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes for batched embeddings "
                     "(results are bit-identical for any value)")
    run.add_argument("--perf", action="store_true",
                     help="print perf counters/timers after the flow")
    run.add_argument("--route", action="store_true",
                     help="run low-stress + infinite routing at the end")
    run.add_argument("--route-jobs", type=int, default=1, dest="route_jobs",
                     help="worker processes for W-infinity routing "
                     "(results are bit-identical for any value)")
    run.add_argument("--route-kernel", choices=("auto", "scalar", "vector"),
                     default="auto", dest="route_kernel",
                     help="negotiation kernel for the fast router "
                     "(bit-identical results; auto = vector with numpy)")
    run.add_argument("--route-search", choices=("auto", "heap", "wavefront"),
                     default="auto", dest="route_search",
                     help="uniform-regime search engine for the fast router "
                     "(bit-identical results; auto = wavefront with numpy)")
    run.add_argument("--run-dir", type=Path,
                     help="run directory: journal.jsonl, checkpoint.json, "
                     "trace.json, result.json")
    run.add_argument("--trace", nargs="?", const=True, default=False,
                     metavar="FILE",
                     help="write a Chrome trace (default: run-dir/trace.json)")
    run.add_argument("--checkpoint-every", type=int, default=0,
                     dest="checkpoint_every", metavar="N",
                     help="checkpoint the flow every N iterations "
                     "(needs --run-dir)")
    run.add_argument("--out-blif", type=Path)
    run.add_argument("--out-placement", type=Path)
    run.add_argument("--draw", action="store_true",
                     help="print the placement grid before/after")
    run.set_defaults(func=cmd_run)

    route = sub.add_parser("route", help="route a placement, report timing")
    _add_input_arguments(route)
    route.add_argument("--route-jobs", type=int, default=1, dest="route_jobs")
    route.add_argument("--wmin-engine", choices=("fast", "reference"),
                       default="fast", dest="wmin_engine",
                       help="W_min search strategy: warm-started fast engine "
                       "or the cold reference bisection (identical widths)")
    route.add_argument("--start-width", type=int, default=None,
                       dest="start_width", metavar="W",
                       help="warm-start the W_min search at this width "
                       "(e.g. a prior run's result; never changes the answer)")
    route.add_argument("--route-kernel", choices=("auto", "scalar", "vector"),
                       default="auto", dest="route_kernel",
                       help="negotiation kernel for the fast router "
                       "(bit-identical results; auto = vector with numpy)")
    route.add_argument("--route-search", choices=("auto", "heap", "wavefront"),
                       default="auto", dest="route_search",
                       help="uniform-regime search engine for the fast router "
                       "(bit-identical results; auto = wavefront with numpy)")
    route.set_defaults(func=cmd_route)

    bench = sub.add_parser(
        "bench",
        help="benchmark runner (tables/figures); args forwarded verbatim",
        add_help=False,
    )
    bench.add_argument("bench_args", nargs=argparse.REMAINDER)
    bench.set_defaults(func=cmd_bench)

    resume = sub.add_parser("resume", help="continue a checkpointed run")
    resume.add_argument("run_dir", type=Path)
    resume.add_argument("--trace", nargs="?", const=True, default=False,
                        metavar="FILE",
                        help="trace the continuation (default: "
                        "run-dir/trace.json)")
    resume.set_defaults(func=cmd_resume)

    view = sub.add_parser("trace-view", help="summarize a Chrome trace")
    view.add_argument("trace_file", type=Path)
    view.add_argument("--limit", type=int, default=20,
                      help="show the top N spans by total time")
    view.set_defaults(func=cmd_trace_view)

    campaign = sub.add_parser(
        "campaign",
        help="fault-tolerant parallel experiment matrix "
        "(run/resume/status/report over a durable store)",
    )
    camp_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    crun = camp_sub.add_parser(
        "run", help="start a new campaign in a directory"
    )
    crun.add_argument("campaign_dir", type=Path)
    crun.add_argument("--circuits", default="all",
                      help="'all', 'small', 'large' or CSV names")
    crun.add_argument("--algorithms", default="local,rt,lex-3",
                      help="CSV of replication algorithms")
    crun.add_argument("--seeds", default="0",
                      help="CSV of placement seeds (default: 0)")
    crun.add_argument("--scale", type=float, default=0.08)
    crun.add_argument("--effort", type=float, default=1.0)
    crun.add_argument("--jobs", type=int, default=1,
                      help="worker processes (one task per process)")
    crun.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="kill a task after S seconds (counts as a failure)")
    crun.add_argument("--retries", type=int, default=2,
                      help="re-runs after a task's first failure")
    crun.add_argument("--backoff", type=float, default=0.5, metavar="S",
                      help="base retry delay; doubles per attempt")
    crun.add_argument("--route-jobs", type=int, default=1, dest="route_jobs")
    crun.add_argument("--wmin-engine", choices=("fast", "reference"),
                      default="fast", dest="wmin_engine")
    crun.add_argument("--route-kernel", choices=("auto", "scalar", "vector"),
                      default="auto", dest="route_kernel")
    crun.add_argument("--route-search", choices=("auto", "heap", "wavefront"),
                      default="auto", dest="route_search")
    crun.add_argument("--perf", action="store_true",
                      help="per-task perf snapshots into DIR/perf/")
    crun.add_argument("--trace", action="store_true",
                      help="per-task Chrome traces into DIR/trace/")
    crun.add_argument("--netlist-store", type=Path, default=None,
                      dest="netlist_store", metavar="DB",
                      help="share one read-only netlist store across workers "
                      "instead of pickling netlists into task payloads")
    crun.add_argument("--inject-fault", action="append", default=[],
                      dest="inject_fault", metavar="TASK=N",
                      help="testing hook: fail TASK's first N attempts "
                      "(negative N hangs, exercising --timeout)")
    crun.set_defaults(func=cmd_campaign_run)

    cresume = camp_sub.add_parser(
        "resume", help="re-run only the tasks of a campaign not yet done"
    )
    cresume.add_argument("campaign_dir", type=Path)
    cresume.add_argument("--jobs", type=int, default=None,
                         help="override the stored worker count")
    cresume.set_defaults(func=cmd_campaign_resume)

    cstatus = camp_sub.add_parser("status", help="campaign progress")
    cstatus.add_argument("campaign_dir", type=Path)
    cstatus.set_defaults(func=cmd_campaign_status)

    creport = camp_sub.add_parser(
        "report", help="render a results table from the store"
    )
    creport.add_argument("campaign_dir", type=Path)
    creport.add_argument("experiment", nargs="?", default="table2",
                         choices=("table1", "table2", "table3"))
    creport.add_argument("--seed", type=int, default=None,
                         help="which matrix seed to render (default: first)")
    creport.add_argument("--partial", action="store_true",
                         help="render even when some tasks have no result")
    creport.set_defaults(func=cmd_campaign_report)

    netlist = sub.add_parser(
        "netlist",
        help="netlist store maintenance (build a design, inspect a store)",
    )
    nl_sub = netlist.add_subparsers(dest="netlist_command", required=True)

    nbuild = nl_sub.add_parser(
        "build", help="(re)build one design into a netlist store"
    )
    nbuild.add_argument("store", type=Path, help="store database path")
    nsource = nbuild.add_mutually_exclusive_group(required=True)
    nsource.add_argument("--blif", type=Path, help="input BLIF netlist")
    nsource.add_argument(
        "--circuit",
        choices=sorted(SPEC_BY_NAME),
        help="stream an MCNC-calibrated suite circuit into the store",
    )
    nbuild.add_argument("--scale", type=float, default=0.08,
                        help="suite-circuit scale (with --circuit)")
    nbuild.add_argument("--lut-size", type=int, default=4, dest="lut_size")
    nbuild.set_defaults(func=cmd_netlist_build)

    ninfo = nl_sub.add_parser(
        "info", help="print store size, schema version and design counts"
    )
    ninfo.add_argument("store", type=Path, help="store database path")
    ninfo.set_defaults(func=cmd_netlist_info)

    serve = sub.add_parser(
        "serve",
        help="run the replication service daemon "
        "(durable job queue + HTTP API over a state directory)",
    )
    serve.add_argument("state_dir", type=Path,
                       help="directory for serve.sqlite, serve.json and "
                       "per-job run directories")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="bind port (0 = ephemeral; the bound port is "
                       "written to serve.json)")
    serve.add_argument("--workers", type=int, default=2,
                       help="max concurrent worker processes")
    serve.add_argument("--retries", type=int, default=0,
                       help="re-runs after a job's first failed attempt")
    serve.add_argument("--job-timeout", type=float, default=None,
                       dest="job_timeout", metavar="S",
                       help="kill a worker after S seconds")
    serve.add_argument("--no-cache", action="store_true", dest="no_cache",
                       help="disable the config-hash result cache")
    serve.add_argument("--perf-json", type=Path, default=None,
                       dest="perf_json", metavar="FILE",
                       help="write the serve.* perf snapshot here on "
                       "shutdown")
    serve.set_defaults(func=cmd_serve)

    def _add_server_arguments(parser: argparse.ArgumentParser) -> None:
        where = parser.add_mutually_exclusive_group(required=True)
        where.add_argument("--server", metavar="HOST:PORT",
                           help="daemon address")
        where.add_argument("--dir", type=Path, dest="state_dir",
                           help="daemon state directory (reads serve.json)")

    submit = sub.add_parser(
        "submit", help="submit a job to a running service"
    )
    _add_server_arguments(submit)
    submit.add_argument("--kind", choices=("place", "optimize", "route",
                                           "campaign"),
                        default="optimize")
    submit.add_argument("--config", type=Path, default=None, metavar="FILE",
                        help="JSON config file (flags below override it)")
    submit.add_argument("--circuit", default=None)
    submit.add_argument("--blif", type=Path, default=None)
    submit.add_argument("--scale", type=float, default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--algorithm", default=None)
    submit.add_argument("--effort", type=float, default=None)
    submit.add_argument("--route", action="store_true", default=None,
                        help="route after optimizing (optimize kind)")
    submit.add_argument("--client", default="anon",
                        help="client token for multi-tenant accounting")
    submit.add_argument("--no-cache", action="store_true", dest="no_cache",
                        help="force a fresh run even on a cache hit")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes; print its result")
    submit.add_argument("--stream", action="store_true",
                        help="stream the job's journal events while waiting")
    submit.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="give up waiting after S seconds (with --wait)")
    submit.set_defaults(func=cmd_submit)

    jobs = sub.add_parser(
        "jobs", help="list/inspect/cancel jobs on a running service"
    )
    _add_server_arguments(jobs)
    jobs.add_argument("job_id", nargs="?", default=None,
                      help="show one job (default: list)")
    jobs.add_argument("--client", default=None, help="filter by client token")
    jobs.add_argument("--status", default=None,
                      choices=("pending", "running", "done", "failed",
                               "cancelled"),
                      help="filter by status")
    jobs.add_argument("--limit", type=int, default=None)
    jobs.add_argument("--result", action="store_true",
                      help="print the job's stored result.json text")
    jobs.add_argument("--events", action="store_true",
                      help="stream the job's journal events")
    jobs.add_argument("--cancel", action="store_true",
                      help="cancel the job")
    jobs.set_defaults(func=cmd_jobs)

    return parser


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _load_and_place(args) -> tuple[api.Design, api.PlaceResult]:
    store = args.netlist_store
    if args.blif is not None and not args.blif.exists():
        raise CliError(f"no BLIF file at {args.blif}", EXIT_MISSING)
    if args.blif is not None:
        design = api.load_design(blif=args.blif, netlist_store=store)
        print(f"read {args.blif}: {design.netlist.num_logic_blocks} logic "
              f"blocks, {design.netlist.num_pads} pads -> {design.arch} FPGA")
    else:
        design = api.load_design(
            circuit=args.circuit, scale=args.scale, netlist_store=store
        )
        print(f"generated {args.circuit} @ scale {args.scale:g}: "
              f"{design.netlist.num_logic_blocks} logic blocks on {design.arch}")

    placed = api.place(
        design,
        seed=args.seed,
        effort=args.place_effort,
        placement_json=args.in_placement,
    )
    if args.in_placement is not None:
        print(f"loaded placement from {args.in_placement}")
    else:
        print(f"placed in {placed.seconds:.1f}s "
              f"({placed.moves_accepted} accepted moves)")
    print(f"placement-level critical delay: {placed.critical_delay:.2f}")
    return design, placed


def cmd_run(args) -> int:
    if args.checkpoint_every and args.run_dir is None:
        raise CliError("--checkpoint-every needs --run-dir", EXIT_USAGE)
    if args.algorithm != "none":
        from repro.core.signatures import scheme_by_name

        try:
            scheme_by_name(args.algorithm)
        except ValueError as exc:
            raise CliError(str(exc), EXIT_USAGE) from None
    config = RunConfig.from_args(args)
    design, placed = _load_and_place(args)
    placement = placed.placement
    if args.draw:
        print(render_placement(design.netlist, placement))

    if args.run_dir is not None:
        args.run_dir.mkdir(parents=True, exist_ok=True)
        (args.run_dir / api.CONFIG_FILE).write_text(
            json.dumps(config.to_dict(), indent=2) + "\n"
        )

    if args.algorithm != "none":
        if args.perf:
            PERF.reset()
            PERF.enable()
        result = api.optimize(
            design,
            placement,
            config=config,
            run_dir=args.run_dir,
            trace=args.trace,
            checkpoint_every=args.checkpoint_every,
        )
        print(
            f"replication ({args.algorithm}) in {result.seconds:.1f}s: "
            f"{result.initial_delay:.2f} -> {result.final_delay:.2f} "
            f"({result.improvement:.1%}; {result.replicated} replicated, "
            f"{result.unified} unified, {len(result.iterations)} iterations)"
        )
        print(render_history(result.iterations))
        if args.run_dir is not None:
            print(f"run artifacts in {args.run_dir}")
        if args.draw:
            print(render_placement(design.netlist, placement))

    if args.route:
        if args.perf and not PERF.enabled:
            PERF.reset()
            PERF.enable()
        routed = api.route(
            design, placement, jobs=args.route_jobs,
            route_kernel=args.route_kernel,
            route_search=args.route_search,
        )
        _print_routing(routed)
        if args.run_dir is not None:
            _record_route_result(args.run_dir, routed)

    if args.perf and PERF.enabled:
        from repro.perf import sample_peak_rss

        PERF.record_max("peak_rss_mb", sample_peak_rss())
        PERF.disable()
        print(PERF.format())

    api.write_outputs(
        design,
        placement,
        out_blif=args.out_blif,
        out_placement=args.out_placement,
    )
    if args.out_blif is not None:
        print(f"wrote {args.out_blif}")
    if args.out_placement is not None:
        print(f"wrote {args.out_placement}")
    return 0


def cmd_route(args) -> int:
    design, placed = _load_and_place(args)
    _print_routing(api.route(
        design, placed.placement, jobs=args.route_jobs,
        wmin_engine=args.wmin_engine, start_width=args.start_width,
        route_kernel=args.route_kernel,
        route_search=args.route_search,
    ))
    return 0


def _print_routing(routed: api.RouteResult) -> None:
    print(
        f"routed: W_inf {routed.w_inf:.2f}  "
        f"W_ls {routed.w_ls:.2f} (W={routed.channel_width:g})  "
        f"wire {routed.wirelength}  "
        f"[{routed.engine}/{routed.kernel}/{routed.search}]"
    )


def _record_route_result(run_dir: Path, routed: api.RouteResult) -> None:
    """Merge routing metrics + engine/kernel/search provenance into
    result.json."""
    path = Path(run_dir) / api.RESULT_FILE
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload["route"] = {
        "w_inf": routed.w_inf,
        "w_ls": routed.w_ls,
        "channel_width": routed.channel_width,
        "wirelength": routed.wirelength,
        "seconds": round(routed.seconds, 3),
        "engine": routed.engine,
        "kernel": routed.kernel,
        "search": routed.search,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def cmd_bench(args) -> int:
    from repro.bench.runner import main as bench_main

    return bench_main(args.bench_args)


def cmd_resume(args) -> int:
    try:
        result = api.resume(args.run_dir, trace=args.trace)
    except CheckpointError as exc:
        raise CliError(str(exc), EXIT_MISSING) from None
    print(
        f"resumed {args.run_dir} in {result.seconds:.1f}s: "
        f"{result.initial_delay:.2f} -> {result.final_delay:.2f} "
        f"({result.improvement:.1%}; {result.replicated} replicated, "
        f"{result.unified} unified, {len(result.iterations)} iterations)"
    )
    print(render_history(result.iterations))
    return 0


def cmd_trace_view(args) -> int:
    try:
        trace = json.loads(args.trace_file.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CliError(
            f"cannot read {args.trace_file}: {exc}", EXIT_MISSING
        ) from None
    rows = summarize_trace(trace)
    if not rows:
        print("(no complete spans in trace)")
        return 0
    width = max(len(row["name"]) for row in rows)
    print(f"{'span':<{width}}  {'count':>6}  {'total ms':>10}  "
          f"{'avg ms':>9}  {'max ms':>9}")
    for row in rows[: args.limit]:
        print(f"{row['name']:<{width}}  {row['count']:>6}  "
              f"{row['total_ms']:>10.2f}  {row['avg_ms']:>9.3f}  "
              f"{row['max_ms']:>9.3f}")
    return 0


# ----------------------------------------------------------------------
# Netlist store subcommands
# ----------------------------------------------------------------------


def cmd_netlist_build(args) -> int:
    from repro.netlist.store import NetlistStore, NetlistStoreError

    store = NetlistStore(args.store)
    try:
        if args.blif is not None:
            from repro.netlist.blif import read_blif

            key = f"blif:{args.blif.stem}"
            store.save_design(
                key, read_blif(args.blif.read_text()), lut_size=args.lut_size
            )
        else:
            from repro.bench.suite import stream_suite_circuit
            from repro.netlist.store import design_key

            key = design_key(args.circuit, args.scale)
            stream_suite_circuit(
                store, args.circuit, scale=args.scale, lut_size=args.lut_size
            )
    except (OSError, NetlistStoreError) as exc:
        print(f"repro netlist build: {exc}", file=sys.stderr)
        return 1
    info = store.design_info(key)
    print(
        f"built {key} in {args.store}: {info['cells']} cells, "
        f"{info['nets']} nets, {info['pins']} pins "
        f"({info['luts']} LUTs, {info['ffs']} FFs, {info['pads']} pads)"
    )
    return 0


def cmd_netlist_info(args) -> int:
    from repro.netlist.store import NetlistStore, NetlistStoreError

    if not args.store.exists():
        print(f"repro netlist info: no store at {args.store}", file=sys.stderr)
        return 1
    try:
        store = NetlistStore(args.store)
        info = store.info()
    except NetlistStoreError as exc:
        print(f"repro netlist info: {exc}", file=sys.stderr)
        return 1
    print(f"store {args.store}: schema v{info['schema_version']}, "
          f"{len(info['designs'])} design(s), {info['size_bytes']} bytes")
    for design in info["designs"]:
        print(f"  {design['key']}: {design['cells']} cells, "
              f"{design['nets']} nets, {design['pins']} pins "
              f"(lut_size {design['lut_size']})")
    return 0


# ----------------------------------------------------------------------
# Campaign subcommands
# ----------------------------------------------------------------------


def _parse_faults(entries: list[str]) -> dict[str, int]:
    faults: dict[str, int] = {}
    for entry in entries:
        task_id, _, count = entry.partition("=")
        if not task_id or not count:
            raise SystemExit(
                f"repro campaign: bad --inject-fault {entry!r} "
                f"(expected TASK=N)"
            )
        faults[task_id] = int(count)
    return faults


def _print_campaign_summary(summary) -> int:
    print(
        f"campaign finished in {summary.seconds:.1f}s: "
        f"{summary.done} done, {summary.failed} failed, "
        f"{summary.skipped} skipped (of {summary.total})"
    )
    for task_id, error in summary.failures.items():
        last_line = error.strip().splitlines()[-1] if error.strip() else ""
        print(f"  {task_id}: {last_line}", file=sys.stderr)
    return 0 if summary.ok else 1


def cmd_campaign_run(args) -> int:
    try:
        summary = api.campaign_run(
            args.campaign_dir,
            circuits=args.circuits,
            algorithms=args.algorithms,
            seeds=[int(token) for token in args.seeds.split(",")],
            scale=args.scale,
            effort=args.effort,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            route_jobs=args.route_jobs,
            wmin_engine=args.wmin_engine,
            route_kernel=args.route_kernel,
            route_search=args.route_search,
            perf=args.perf,
            trace=args.trace,
            netlist_store=args.netlist_store,
            faults=_parse_faults(args.inject_fault),
            echo=print,
        )
    except ValueError as exc:
        print(f"repro campaign run: {exc}", file=sys.stderr)
        return 2
    return _print_campaign_summary(summary)


def cmd_campaign_resume(args) -> int:
    from repro.campaign.store import CampaignStoreError

    try:
        summary = api.campaign_resume(
            args.campaign_dir, jobs=args.jobs, echo=print
        )
    except CampaignStoreError as exc:
        print(f"repro campaign resume: {exc}", file=sys.stderr)
        return 2
    return _print_campaign_summary(summary)


def cmd_campaign_status(args) -> int:
    from repro.campaign.store import CampaignStoreError

    try:
        print(api.campaign_status(args.campaign_dir))
    except CampaignStoreError as exc:
        print(f"repro campaign status: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_campaign_report(args) -> int:
    from repro.campaign.store import CampaignStoreError

    try:
        print(api.campaign_report(
            args.campaign_dir,
            args.experiment,
            seed=args.seed,
            allow_partial=args.partial,
        ))
    except (CampaignStoreError, ValueError) as exc:
        print(f"repro campaign report: {exc}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------------------------
# Serve subcommands
# ----------------------------------------------------------------------


def cmd_serve(args) -> int:
    from repro.serve import ServeDaemon

    args.state_dir.mkdir(parents=True, exist_ok=True)
    daemon = ServeDaemon(
        args.state_dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        retries=args.retries,
        job_timeout=args.job_timeout,
        cache=not args.no_cache,
        echo=print,
    )
    daemon.run()
    if args.perf_json is not None:
        args.perf_json.parent.mkdir(parents=True, exist_ok=True)
        args.perf_json.write_text(
            json.dumps(PERF.snapshot(), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote perf snapshot to {args.perf_json}")
    return 0


def _serve_client(args):
    from repro.serve import ServeClient, ServeError

    if args.server is not None:
        host, _, port = args.server.rpartition(":")
        if not host or not port.isdigit():
            raise CliError(
                f"bad --server {args.server!r} (expected HOST:PORT)",
                EXIT_USAGE,
            )
        return ServeClient(host, int(port))
    try:
        return ServeClient.from_dir(args.state_dir)
    except ServeError as exc:
        raise CliError(exc.message, EXIT_MISSING) from None


def _serve_error_code(exc) -> int:
    if exc.status == 0:  # connection-level: daemon not reachable
        return EXIT_MISSING
    if exc.status in (400, 409):
        return EXIT_USAGE
    if exc.status == 404:
        return EXIT_MISSING
    return EXIT_FAILURE


def _submit_config(args) -> dict:
    config: dict = {}
    if args.config is not None:
        try:
            config = json.loads(args.config.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CliError(
                f"cannot read --config {args.config}: {exc}", EXIT_MISSING
            ) from None
        if not isinstance(config, dict):
            raise CliError(
                f"--config {args.config} must hold a JSON object", EXIT_USAGE
            )
    overrides = {
        "circuit": args.circuit,
        "blif": None if args.blif is None else str(args.blif),
        "scale": args.scale,
        "seed": args.seed,
        "algorithm": args.algorithm,
        "effort": args.effort,
        "route": args.route,
    }
    config.update(
        {key: value for key, value in overrides.items() if value is not None}
    )
    return config


def _print_job_events(client, job_id: str) -> None:
    for event in client.events(job_id):
        print(json.dumps(event))


def cmd_submit(args) -> int:
    from repro.serve import JobFailed, ServeError

    client = _serve_client(args)
    try:
        ack = client.submit(
            args.kind,
            _submit_config(args),
            client=args.client,
            cache=not args.no_cache,
        )
    except ServeError as exc:
        raise CliError(exc.message, _serve_error_code(exc)) from None
    except OSError as exc:
        raise CliError(f"cannot reach daemon: {exc}", EXIT_MISSING) from None
    job_id = ack["job_id"]
    note = ("cached" if ack.get("cached") else
            "coalesced" if ack.get("coalesced") else ack["status"])
    print(f"submitted {job_id} ({note}, config_hash {ack['config_hash']})")
    if not (args.wait or args.stream):
        return 0
    try:
        if args.stream:
            _print_job_events(client, job_id)
        job = client.wait(job_id, timeout=args.timeout)
    except JobFailed as exc:
        raise CliError(str(exc), EXIT_FAILURE) from None
    except TimeoutError as exc:
        raise CliError(str(exc), EXIT_FAILURE) from None
    except ServeError as exc:
        raise CliError(exc.message, _serve_error_code(exc)) from None
    print(f"job {job_id} done in {job['seconds']:.1f}s")
    sys.stdout.write(client.result(job_id).decode())
    return 0


def cmd_jobs(args) -> int:
    from repro.serve import ServeError

    client = _serve_client(args)
    flags = [args.result, args.events, args.cancel]
    if sum(bool(flag) for flag in flags) > 1:
        raise CliError(
            "--result, --events and --cancel are mutually exclusive",
            EXIT_USAGE,
        )
    if any(flags) and args.job_id is None:
        raise CliError(
            "--result/--events/--cancel need a job id", EXIT_USAGE
        )
    try:
        if args.job_id is None:
            rows = client.jobs(
                client=args.client, status=args.status, limit=args.limit
            )
            for row in rows:
                seconds = f"{row['seconds']:.1f}s" if row["seconds"] else "-"
                print(f"{row['job_id']:<28} {row['status']:<9} "
                      f"{row['kind']:<9} {seconds:>8}  {row['client']}")
            if not rows:
                print("(no jobs)")
            return 0
        if args.result:
            sys.stdout.write(client.result(args.job_id).decode())
        elif args.events:
            _print_job_events(client, args.job_id)
        elif args.cancel:
            ack = client.cancel(args.job_id)
            print(f"cancelled {ack['job_id']}")
        else:
            print(json.dumps(client.job(args.job_id), indent=2))
        return 0
    except ServeError as exc:
        raise CliError(exc.message, _serve_error_code(exc)) from None
    except OSError as exc:
        raise CliError(f"cannot reach daemon: {exc}", EXIT_MISSING) from None


# ----------------------------------------------------------------------
# Entry point (with the pre-subcommand compatibility shim)
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        # Pre-1.1 flat invocation: python -m repro --circuit tseng ...
        print(LEGACY_NOTICE, file=sys.stderr)
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except CliError as exc:
        print(f"repro {args.command}: {exc}", file=sys.stderr)
        return exc.code
    except FileNotFoundError as exc:
        print(f"repro {args.command}: no such file: "
              f"{exc.filename or exc}", file=sys.stderr)
        return EXIT_MISSING
    except KeyboardInterrupt:
        print(f"repro {args.command}: interrupted", file=sys.stderr)
        return 130
    except BrokenPipeError:
        # downstream closed the pipe (e.g. | head); swap in devnull so the
        # interpreter's exit-time stdout flush cannot raise a second time
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
