"""Command-line flow driver: ``python -m repro``.

A small end-to-end CLI so the library can be driven without writing
Python:

* input is either a BLIF file (``--blif design.blif``) or a suite
  circuit (``--circuit tseng --scale 0.1``);
* stages: timing-driven placement -> (optional) replication ->
  (optional) routing;
* outputs: a human report, and optionally the optimized netlist
  (``--out-blif``) and placement (``--out-placement``).

Examples::

    python -m repro --circuit tseng --scale 0.08 --algorithm lex-3 --route
    python -m repro --blif design.blif --algorithm rt \\
        --out-blif out.blif --out-placement out.place.json
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.arch.fpga import FpgaArch
from repro.bench.runner import replication_config
from repro.bench.suite import SPEC_BY_NAME, suite_circuit
from repro.core.flow import optimize_replication
from repro.netlist.blif import read_blif, write_blif
from repro.netlist.validate import validate_netlist
from repro.perf import PERF
from repro.place.serialize import placement_from_json, placement_to_json
from repro.place.timing_driven import place_timing_driven
from repro.route.metrics import route_infinite, route_low_stress, routed_critical_delay
from repro.timing.sta import analyze
from repro.viz import render_history, render_placement


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Placement-coupled logic replication flow "
        "(Hrkic/Lillis/Beraudo, DAC'04).",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--blif", type=Path, help="input BLIF netlist")
    source.add_argument(
        "--circuit",
        choices=sorted(SPEC_BY_NAME),
        help="generate an MCNC-calibrated suite circuit",
    )
    parser.add_argument("--scale", type=float, default=0.08,
                        help="suite-circuit scale (with --circuit)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--place-effort", type=float, default=0.3,
                        help="annealer inner_num scale")
    parser.add_argument(
        "--algorithm",
        default="rt",
        help="replication variant: rt, lex-2..lex-5, lex-mc, or 'none'",
    )
    parser.add_argument("--effort", type=float, default=1.0,
                        help="replication-flow effort dial")
    parser.add_argument("--batch-sinks", type=int, default=1,
                        help="tied critical endpoints embedded per iteration "
                        "(1 = paper's one-sink loop)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for batched embeddings "
                        "(results are bit-identical for any value)")
    parser.add_argument("--perf", action="store_true",
                        help="print perf counters/timers after the flow")
    parser.add_argument("--route", action="store_true",
                        help="run low-stress + infinite routing at the end")
    parser.add_argument("--route-jobs", type=int, default=1,
                        help="worker processes for W-infinity routing "
                        "(results are bit-identical for any value)")
    parser.add_argument("--in-placement", type=Path,
                        help="start from a saved placement instead of SA")
    parser.add_argument("--out-blif", type=Path)
    parser.add_argument("--out-placement", type=Path)
    parser.add_argument("--draw", action="store_true",
                        help="print the placement grid before/after")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.blif is not None:
        netlist = read_blif(args.blif.read_text())
        arch = FpgaArch.min_square_for(netlist.num_logic_blocks, netlist.num_pads)
        print(f"read {args.blif}: {netlist.num_logic_blocks} logic blocks, "
              f"{netlist.num_pads} pads -> {arch} FPGA")
    else:
        netlist, arch = suite_circuit(args.circuit, scale=args.scale)
        print(f"generated {args.circuit} @ scale {args.scale:g}: "
              f"{netlist.num_logic_blocks} logic blocks on {arch}")
    validate_netlist(netlist)

    if args.in_placement is not None:
        placement = placement_from_json(
            netlist, args.in_placement.read_text(), arch=arch
        )
        placement.assert_complete(netlist)
        print(f"loaded placement from {args.in_placement}")
    else:
        start = time.perf_counter()
        placement, stats = place_timing_driven(
            netlist, arch, seed=args.seed, inner_scale=args.place_effort
        )
        print(f"placed in {time.perf_counter() - start:.1f}s "
              f"({stats.moves_accepted} accepted moves)")

    before = analyze(netlist, placement).critical_delay
    print(f"placement-level critical delay: {before:.2f}")
    if args.draw:
        print(render_placement(netlist, placement))

    if args.algorithm != "none":
        if args.perf:
            PERF.reset()
            PERF.enable()
        start = time.perf_counter()
        result = optimize_replication(
            netlist,
            placement,
            replication_config(
                args.algorithm,
                args.effort,
                batch_sinks=args.batch_sinks,
                jobs=args.jobs,
            ),
        )
        print(
            f"replication ({args.algorithm}) in {time.perf_counter() - start:.1f}s: "
            f"{result.initial_delay:.2f} -> {result.final_delay:.2f} "
            f"({result.improvement:.1%}; {result.total_replicated} replicated, "
            f"{result.total_unified} unified, {len(result.history)} iterations)"
        )
        print(render_history(result.history))
        validate_netlist(netlist)
        if args.draw:
            print(render_placement(netlist, placement))

    if args.route:
        if args.perf and not PERF.enabled:
            PERF.reset()
            PERF.enable()
        low = route_low_stress(netlist, placement)
        infinite = route_infinite(netlist, placement, jobs=args.route_jobs)
        w_ls = routed_critical_delay(netlist, placement, low)
        w_inf = routed_critical_delay(netlist, placement, infinite)
        print(
            f"routed: W_inf {w_inf.critical_delay:.2f}  "
            f"W_ls {w_ls.critical_delay:.2f} (W={low.channel_width:g})  "
            f"wire {w_ls.wirelength}"
        )

    if args.perf and PERF.enabled:
        PERF.disable()
        print(PERF.format())

    if args.out_blif is not None:
        args.out_blif.write_text(write_blif(netlist))
        print(f"wrote {args.out_blif}")
    if args.out_placement is not None:
        args.out_placement.write_text(placement_to_json(netlist, placement))
        print(f"wrote {args.out_placement}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
