"""Command-line flow driver: ``python -m repro <subcommand>``.

Subcommands::

    repro run        end-to-end flow: place -> replicate -> (route)
    repro route      route an existing placement and report timing
    repro bench      forward to the benchmark runner (tables/figures)
    repro resume     continue a checkpointed run directory
    repro trace-view summarize a Chrome trace produced by --trace

Examples::

    python -m repro run --circuit tseng --scale 0.08 --algorithm lex-3 --route
    python -m repro run --circuit tseng --run-dir runs/t1 --trace \\
        --checkpoint-every 2
    python -m repro resume runs/t1
    python -m repro trace-view runs/t1/trace.json
    python -m repro bench table2 --scale 0.08 --algorithms rt,lex-3

The pre-1.1 flat form (``python -m repro --circuit tseng ...``) still
works: it is rewritten to ``run`` with a deprecation notice on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import api
from repro.bench.suite import SPEC_BY_NAME
from repro.core.checkpoint import CheckpointError
from repro.core.config import RunConfig
from repro.perf import PERF
from repro.trace import summarize_trace
from repro.viz import render_history, render_placement

LEGACY_NOTICE = (
    "repro: flat flags are deprecated; use 'python -m repro run ...' "
    "(rewriting to the 'run' subcommand)"
)


# ----------------------------------------------------------------------
# Parsers
# ----------------------------------------------------------------------


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--blif", type=Path, help="input BLIF netlist")
    source.add_argument(
        "--circuit",
        choices=sorted(SPEC_BY_NAME),
        help="generate an MCNC-calibrated suite circuit",
    )
    parser.add_argument("--scale", type=float, default=0.08,
                        help="suite-circuit scale (with --circuit)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--place-effort", type=float, default=0.3,
                        dest="place_effort", help="annealer inner_num scale")
    parser.add_argument("--in-placement", type=Path,
                        help="start from a saved placement instead of SA")
    parser.add_argument("--netlist-store", type=Path, default=None,
                        dest="netlist_store", metavar="DB",
                        help="load the design from (building into, on first "
                        "use) this netlist store database; results are "
                        "byte-identical with and without it")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Placement-coupled logic replication flow "
        "(Hrkic/Lillis/Beraudo, DAC'04).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="place -> replicate -> (route)")
    _add_input_arguments(run)
    run.add_argument(
        "--algorithm",
        default="rt",
        help="replication variant: rt, lex-2..lex-5, lex-mc, or 'none'",
    )
    run.add_argument("--effort", type=float, default=1.0,
                     help="replication-flow effort dial")
    run.add_argument("--batch-sinks", type=int, default=1, dest="batch_sinks",
                     help="tied critical endpoints embedded per iteration "
                     "(1 = paper's one-sink loop)")
    run.add_argument("--jobs", type=int, default=1,
                     help="worker processes for batched embeddings "
                     "(results are bit-identical for any value)")
    run.add_argument("--perf", action="store_true",
                     help="print perf counters/timers after the flow")
    run.add_argument("--route", action="store_true",
                     help="run low-stress + infinite routing at the end")
    run.add_argument("--route-jobs", type=int, default=1, dest="route_jobs",
                     help="worker processes for W-infinity routing "
                     "(results are bit-identical for any value)")
    run.add_argument("--route-kernel", choices=("auto", "scalar", "vector"),
                     default="auto", dest="route_kernel",
                     help="negotiation kernel for the fast router "
                     "(bit-identical results; auto = vector with numpy)")
    run.add_argument("--route-search", choices=("auto", "heap", "wavefront"),
                     default="auto", dest="route_search",
                     help="uniform-regime search engine for the fast router "
                     "(bit-identical results; auto = wavefront with numpy)")
    run.add_argument("--run-dir", type=Path,
                     help="run directory: journal.jsonl, checkpoint.json, "
                     "trace.json, result.json")
    run.add_argument("--trace", nargs="?", const=True, default=False,
                     metavar="FILE",
                     help="write a Chrome trace (default: run-dir/trace.json)")
    run.add_argument("--checkpoint-every", type=int, default=0,
                     dest="checkpoint_every", metavar="N",
                     help="checkpoint the flow every N iterations "
                     "(needs --run-dir)")
    run.add_argument("--out-blif", type=Path)
    run.add_argument("--out-placement", type=Path)
    run.add_argument("--draw", action="store_true",
                     help="print the placement grid before/after")
    run.set_defaults(func=cmd_run)

    route = sub.add_parser("route", help="route a placement, report timing")
    _add_input_arguments(route)
    route.add_argument("--route-jobs", type=int, default=1, dest="route_jobs")
    route.add_argument("--wmin-engine", choices=("fast", "reference"),
                       default="fast", dest="wmin_engine",
                       help="W_min search strategy: warm-started fast engine "
                       "or the cold reference bisection (identical widths)")
    route.add_argument("--start-width", type=int, default=None,
                       dest="start_width", metavar="W",
                       help="warm-start the W_min search at this width "
                       "(e.g. a prior run's result; never changes the answer)")
    route.add_argument("--route-kernel", choices=("auto", "scalar", "vector"),
                       default="auto", dest="route_kernel",
                       help="negotiation kernel for the fast router "
                       "(bit-identical results; auto = vector with numpy)")
    route.add_argument("--route-search", choices=("auto", "heap", "wavefront"),
                       default="auto", dest="route_search",
                       help="uniform-regime search engine for the fast router "
                       "(bit-identical results; auto = wavefront with numpy)")
    route.set_defaults(func=cmd_route)

    bench = sub.add_parser(
        "bench",
        help="benchmark runner (tables/figures); args forwarded verbatim",
        add_help=False,
    )
    bench.add_argument("bench_args", nargs=argparse.REMAINDER)
    bench.set_defaults(func=cmd_bench)

    resume = sub.add_parser("resume", help="continue a checkpointed run")
    resume.add_argument("run_dir", type=Path)
    resume.add_argument("--trace", nargs="?", const=True, default=False,
                        metavar="FILE",
                        help="trace the continuation (default: "
                        "run-dir/trace.json)")
    resume.set_defaults(func=cmd_resume)

    view = sub.add_parser("trace-view", help="summarize a Chrome trace")
    view.add_argument("trace_file", type=Path)
    view.add_argument("--limit", type=int, default=20,
                      help="show the top N spans by total time")
    view.set_defaults(func=cmd_trace_view)

    campaign = sub.add_parser(
        "campaign",
        help="fault-tolerant parallel experiment matrix "
        "(run/resume/status/report over a durable store)",
    )
    camp_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    crun = camp_sub.add_parser(
        "run", help="start a new campaign in a directory"
    )
    crun.add_argument("campaign_dir", type=Path)
    crun.add_argument("--circuits", default="all",
                      help="'all', 'small', 'large' or CSV names")
    crun.add_argument("--algorithms", default="local,rt,lex-3",
                      help="CSV of replication algorithms")
    crun.add_argument("--seeds", default="0",
                      help="CSV of placement seeds (default: 0)")
    crun.add_argument("--scale", type=float, default=0.08)
    crun.add_argument("--effort", type=float, default=1.0)
    crun.add_argument("--jobs", type=int, default=1,
                      help="worker processes (one task per process)")
    crun.add_argument("--timeout", type=float, default=None, metavar="S",
                      help="kill a task after S seconds (counts as a failure)")
    crun.add_argument("--retries", type=int, default=2,
                      help="re-runs after a task's first failure")
    crun.add_argument("--backoff", type=float, default=0.5, metavar="S",
                      help="base retry delay; doubles per attempt")
    crun.add_argument("--route-jobs", type=int, default=1, dest="route_jobs")
    crun.add_argument("--wmin-engine", choices=("fast", "reference"),
                      default="fast", dest="wmin_engine")
    crun.add_argument("--route-kernel", choices=("auto", "scalar", "vector"),
                      default="auto", dest="route_kernel")
    crun.add_argument("--route-search", choices=("auto", "heap", "wavefront"),
                      default="auto", dest="route_search")
    crun.add_argument("--perf", action="store_true",
                      help="per-task perf snapshots into DIR/perf/")
    crun.add_argument("--trace", action="store_true",
                      help="per-task Chrome traces into DIR/trace/")
    crun.add_argument("--netlist-store", type=Path, default=None,
                      dest="netlist_store", metavar="DB",
                      help="share one read-only netlist store across workers "
                      "instead of pickling netlists into task payloads")
    crun.add_argument("--inject-fault", action="append", default=[],
                      dest="inject_fault", metavar="TASK=N",
                      help="testing hook: fail TASK's first N attempts "
                      "(negative N hangs, exercising --timeout)")
    crun.set_defaults(func=cmd_campaign_run)

    cresume = camp_sub.add_parser(
        "resume", help="re-run only the tasks of a campaign not yet done"
    )
    cresume.add_argument("campaign_dir", type=Path)
    cresume.add_argument("--jobs", type=int, default=None,
                         help="override the stored worker count")
    cresume.set_defaults(func=cmd_campaign_resume)

    cstatus = camp_sub.add_parser("status", help="campaign progress")
    cstatus.add_argument("campaign_dir", type=Path)
    cstatus.set_defaults(func=cmd_campaign_status)

    creport = camp_sub.add_parser(
        "report", help="render a results table from the store"
    )
    creport.add_argument("campaign_dir", type=Path)
    creport.add_argument("experiment", nargs="?", default="table2",
                         choices=("table1", "table2", "table3"))
    creport.add_argument("--seed", type=int, default=None,
                         help="which matrix seed to render (default: first)")
    creport.add_argument("--partial", action="store_true",
                         help="render even when some tasks have no result")
    creport.set_defaults(func=cmd_campaign_report)

    netlist = sub.add_parser(
        "netlist",
        help="netlist store maintenance (build a design, inspect a store)",
    )
    nl_sub = netlist.add_subparsers(dest="netlist_command", required=True)

    nbuild = nl_sub.add_parser(
        "build", help="(re)build one design into a netlist store"
    )
    nbuild.add_argument("store", type=Path, help="store database path")
    nsource = nbuild.add_mutually_exclusive_group(required=True)
    nsource.add_argument("--blif", type=Path, help="input BLIF netlist")
    nsource.add_argument(
        "--circuit",
        choices=sorted(SPEC_BY_NAME),
        help="stream an MCNC-calibrated suite circuit into the store",
    )
    nbuild.add_argument("--scale", type=float, default=0.08,
                        help="suite-circuit scale (with --circuit)")
    nbuild.add_argument("--lut-size", type=int, default=4, dest="lut_size")
    nbuild.set_defaults(func=cmd_netlist_build)

    ninfo = nl_sub.add_parser(
        "info", help="print store size, schema version and design counts"
    )
    ninfo.add_argument("store", type=Path, help="store database path")
    ninfo.set_defaults(func=cmd_netlist_info)

    return parser


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


def _load_and_place(args) -> tuple[api.Design, api.PlaceResult]:
    store = args.netlist_store
    if args.blif is not None:
        design = api.load_design(blif=args.blif, netlist_store=store)
        print(f"read {args.blif}: {design.netlist.num_logic_blocks} logic "
              f"blocks, {design.netlist.num_pads} pads -> {design.arch} FPGA")
    else:
        design = api.load_design(
            circuit=args.circuit, scale=args.scale, netlist_store=store
        )
        print(f"generated {args.circuit} @ scale {args.scale:g}: "
              f"{design.netlist.num_logic_blocks} logic blocks on {design.arch}")

    placed = api.place(
        design,
        seed=args.seed,
        effort=args.place_effort,
        placement_json=args.in_placement,
    )
    if args.in_placement is not None:
        print(f"loaded placement from {args.in_placement}")
    else:
        print(f"placed in {placed.seconds:.1f}s "
              f"({placed.moves_accepted} accepted moves)")
    print(f"placement-level critical delay: {placed.critical_delay:.2f}")
    return design, placed


def cmd_run(args) -> int:
    config = RunConfig.from_args(args)
    design, placed = _load_and_place(args)
    placement = placed.placement
    if args.draw:
        print(render_placement(design.netlist, placement))

    if args.run_dir is not None:
        args.run_dir.mkdir(parents=True, exist_ok=True)
        (args.run_dir / api.CONFIG_FILE).write_text(
            json.dumps(config.to_dict(), indent=2) + "\n"
        )

    if args.algorithm != "none":
        if args.perf:
            PERF.reset()
            PERF.enable()
        result = api.optimize(
            design,
            placement,
            config=config,
            run_dir=args.run_dir,
            trace=args.trace,
            checkpoint_every=args.checkpoint_every,
        )
        print(
            f"replication ({args.algorithm}) in {result.seconds:.1f}s: "
            f"{result.initial_delay:.2f} -> {result.final_delay:.2f} "
            f"({result.improvement:.1%}; {result.replicated} replicated, "
            f"{result.unified} unified, {len(result.iterations)} iterations)"
        )
        print(render_history(result.iterations))
        if args.run_dir is not None:
            print(f"run artifacts in {args.run_dir}")
        if args.draw:
            print(render_placement(design.netlist, placement))

    if args.route:
        if args.perf and not PERF.enabled:
            PERF.reset()
            PERF.enable()
        routed = api.route(
            design, placement, jobs=args.route_jobs,
            route_kernel=args.route_kernel,
            route_search=args.route_search,
        )
        _print_routing(routed)
        if args.run_dir is not None:
            _record_route_result(args.run_dir, routed)

    if args.perf and PERF.enabled:
        from repro.perf import sample_peak_rss

        PERF.record_max("peak_rss_mb", sample_peak_rss())
        PERF.disable()
        print(PERF.format())

    api.write_outputs(
        design,
        placement,
        out_blif=args.out_blif,
        out_placement=args.out_placement,
    )
    if args.out_blif is not None:
        print(f"wrote {args.out_blif}")
    if args.out_placement is not None:
        print(f"wrote {args.out_placement}")
    return 0


def cmd_route(args) -> int:
    design, placed = _load_and_place(args)
    _print_routing(api.route(
        design, placed.placement, jobs=args.route_jobs,
        wmin_engine=args.wmin_engine, start_width=args.start_width,
        route_kernel=args.route_kernel,
        route_search=args.route_search,
    ))
    return 0


def _print_routing(routed: api.RouteResult) -> None:
    print(
        f"routed: W_inf {routed.w_inf:.2f}  "
        f"W_ls {routed.w_ls:.2f} (W={routed.channel_width:g})  "
        f"wire {routed.wirelength}  "
        f"[{routed.engine}/{routed.kernel}/{routed.search}]"
    )


def _record_route_result(run_dir: Path, routed: api.RouteResult) -> None:
    """Merge routing metrics + engine/kernel/search provenance into
    result.json."""
    path = Path(run_dir) / api.RESULT_FILE
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        payload = {}
    payload["route"] = {
        "w_inf": routed.w_inf,
        "w_ls": routed.w_ls,
        "channel_width": routed.channel_width,
        "wirelength": routed.wirelength,
        "seconds": round(routed.seconds, 3),
        "engine": routed.engine,
        "kernel": routed.kernel,
        "search": routed.search,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def cmd_bench(args) -> int:
    from repro.bench.runner import main as bench_main

    return bench_main(args.bench_args)


def cmd_resume(args) -> int:
    try:
        result = api.resume(args.run_dir, trace=args.trace)
    except CheckpointError as exc:
        print(f"repro resume: {exc}", file=sys.stderr)
        return 1
    print(
        f"resumed {args.run_dir} in {result.seconds:.1f}s: "
        f"{result.initial_delay:.2f} -> {result.final_delay:.2f} "
        f"({result.improvement:.1%}; {result.replicated} replicated, "
        f"{result.unified} unified, {len(result.iterations)} iterations)"
    )
    print(render_history(result.iterations))
    return 0


def cmd_trace_view(args) -> int:
    try:
        trace = json.loads(args.trace_file.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"repro trace-view: cannot read {args.trace_file}: {exc}",
              file=sys.stderr)
        return 1
    rows = summarize_trace(trace)
    if not rows:
        print("(no complete spans in trace)")
        return 0
    width = max(len(row["name"]) for row in rows)
    print(f"{'span':<{width}}  {'count':>6}  {'total ms':>10}  "
          f"{'avg ms':>9}  {'max ms':>9}")
    for row in rows[: args.limit]:
        print(f"{row['name']:<{width}}  {row['count']:>6}  "
              f"{row['total_ms']:>10.2f}  {row['avg_ms']:>9.3f}  "
              f"{row['max_ms']:>9.3f}")
    return 0


# ----------------------------------------------------------------------
# Netlist store subcommands
# ----------------------------------------------------------------------


def cmd_netlist_build(args) -> int:
    from repro.netlist.store import NetlistStore, NetlistStoreError

    store = NetlistStore(args.store)
    try:
        if args.blif is not None:
            from repro.netlist.blif import read_blif

            key = f"blif:{args.blif.stem}"
            store.save_design(
                key, read_blif(args.blif.read_text()), lut_size=args.lut_size
            )
        else:
            from repro.bench.suite import stream_suite_circuit
            from repro.netlist.store import design_key

            key = design_key(args.circuit, args.scale)
            stream_suite_circuit(
                store, args.circuit, scale=args.scale, lut_size=args.lut_size
            )
    except (OSError, NetlistStoreError) as exc:
        print(f"repro netlist build: {exc}", file=sys.stderr)
        return 1
    info = store.design_info(key)
    print(
        f"built {key} in {args.store}: {info['cells']} cells, "
        f"{info['nets']} nets, {info['pins']} pins "
        f"({info['luts']} LUTs, {info['ffs']} FFs, {info['pads']} pads)"
    )
    return 0


def cmd_netlist_info(args) -> int:
    from repro.netlist.store import NetlistStore, NetlistStoreError

    if not args.store.exists():
        print(f"repro netlist info: no store at {args.store}", file=sys.stderr)
        return 1
    try:
        store = NetlistStore(args.store)
        info = store.info()
    except NetlistStoreError as exc:
        print(f"repro netlist info: {exc}", file=sys.stderr)
        return 1
    print(f"store {args.store}: schema v{info['schema_version']}, "
          f"{len(info['designs'])} design(s), {info['size_bytes']} bytes")
    for design in info["designs"]:
        print(f"  {design['key']}: {design['cells']} cells, "
              f"{design['nets']} nets, {design['pins']} pins "
              f"(lut_size {design['lut_size']})")
    return 0


# ----------------------------------------------------------------------
# Campaign subcommands
# ----------------------------------------------------------------------


def _parse_faults(entries: list[str]) -> dict[str, int]:
    faults: dict[str, int] = {}
    for entry in entries:
        task_id, _, count = entry.partition("=")
        if not task_id or not count:
            raise SystemExit(
                f"repro campaign: bad --inject-fault {entry!r} "
                f"(expected TASK=N)"
            )
        faults[task_id] = int(count)
    return faults


def _print_campaign_summary(summary) -> int:
    print(
        f"campaign finished in {summary.seconds:.1f}s: "
        f"{summary.done} done, {summary.failed} failed, "
        f"{summary.skipped} skipped (of {summary.total})"
    )
    for task_id, error in summary.failures.items():
        last_line = error.strip().splitlines()[-1] if error.strip() else ""
        print(f"  {task_id}: {last_line}", file=sys.stderr)
    return 0 if summary.ok else 1


def cmd_campaign_run(args) -> int:
    try:
        summary = api.campaign_run(
            args.campaign_dir,
            circuits=args.circuits,
            algorithms=args.algorithms,
            seeds=[int(token) for token in args.seeds.split(",")],
            scale=args.scale,
            effort=args.effort,
            jobs=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            route_jobs=args.route_jobs,
            wmin_engine=args.wmin_engine,
            route_kernel=args.route_kernel,
            route_search=args.route_search,
            perf=args.perf,
            trace=args.trace,
            netlist_store=args.netlist_store,
            faults=_parse_faults(args.inject_fault),
            echo=print,
        )
    except ValueError as exc:
        print(f"repro campaign run: {exc}", file=sys.stderr)
        return 2
    return _print_campaign_summary(summary)


def cmd_campaign_resume(args) -> int:
    from repro.campaign.store import CampaignStoreError

    try:
        summary = api.campaign_resume(
            args.campaign_dir, jobs=args.jobs, echo=print
        )
    except CampaignStoreError as exc:
        print(f"repro campaign resume: {exc}", file=sys.stderr)
        return 2
    return _print_campaign_summary(summary)


def cmd_campaign_status(args) -> int:
    from repro.campaign.store import CampaignStoreError

    try:
        print(api.campaign_status(args.campaign_dir))
    except CampaignStoreError as exc:
        print(f"repro campaign status: {exc}", file=sys.stderr)
        return 2
    return 0


def cmd_campaign_report(args) -> int:
    from repro.campaign.store import CampaignStoreError

    try:
        print(api.campaign_report(
            args.campaign_dir,
            args.experiment,
            seed=args.seed,
            allow_partial=args.partial,
        ))
    except (CampaignStoreError, ValueError) as exc:
        print(f"repro campaign report: {exc}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------------------------
# Entry point (with the pre-subcommand compatibility shim)
# ----------------------------------------------------------------------


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        # Pre-1.1 flat invocation: python -m repro --circuit tseng ...
        print(LEGACY_NOTICE, file=sys.stderr)
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main
    sys.exit(main())
