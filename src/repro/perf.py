"""Lightweight perf observability: counters and phase timers.

The replication flow's performance claims (the paper's "<5% of VPR
place+route runtime", Section VII-A) should be measured, not asserted.
This module provides a process-wide registry that the hot paths —
embedder, incremental STA, legalizer, router, flow phases — report into:

* **counters** — monotonically increasing event counts (labels pushed /
  popped / pruned, STA nodes re-propagated vs. total, ripple moves);
* **timers** — cumulative wall time per named phase, via the
  :meth:`PerfRegistry.timer` context manager.

The registry is *disabled by default* and every instrumentation point is
guarded by a cheap truthiness test, so production runs pay one attribute
load + branch per event.  Enable it explicitly::

    from repro.perf import PERF
    PERF.enable()
    ... run the flow ...
    print(json.dumps(PERF.snapshot(), indent=2))

``python -m repro.bench.runner overhead --perf-json out.json`` and
``scripts/bench_perf.py`` both enable the registry and dump the snapshot
as JSON (see ``BENCH_perf.json`` for the committed trajectory).
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager


class PerfRegistry:
    """Process-wide counter/timer registry (single-threaded updates).

    Worker threads/processes of the parallel embedder aggregate their
    own counts and merge them back through :meth:`merge_counts`, so the
    registry itself never needs locking on the hot path.
    """

    __slots__ = ("enabled", "tracer", "_counters", "_timers", "_maxes")

    def __init__(self) -> None:
        self.enabled = False
        #: Optional :class:`repro.trace.SpanTracer`; when set, every
        #: :meth:`timer` block also emits a trace span (the tracer layers
        #: on the registry's call sites instead of duplicating them).
        self.tracer = None
        self._counters: dict[str, int] = defaultdict(int)
        self._timers: dict[str, float] = defaultdict(float)
        self._maxes: dict[str, float] = {}

    # -- lifecycle -----------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        self._counters.clear()
        self._timers.clear()
        self._maxes.clear()

    # -- recording -----------------------------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        """Bump a counter (call sites guard with ``if PERF.enabled``)."""
        self._counters[name] += amount

    def merge_counts(self, counts: dict[str, int]) -> None:
        """Fold counts aggregated elsewhere (a worker) into the registry."""
        for name, amount in counts.items():
            self._counters[name] += amount

    def add_time(self, name: str, seconds: float) -> None:
        self._timers[name] += seconds

    def merge_times(self, times: dict[str, float]) -> None:
        """Fold timer totals aggregated elsewhere (a worker) in."""
        for name, seconds in times.items():
            self._timers[name] += seconds

    def record_max(self, name: str, value: float) -> None:
        """Keep the running maximum of a gauge (e.g. ``peak_rss_mb``).

        Unlike counters, max gauges merge across workers by taking the
        largest observation, which is what "peak RSS over the whole
        campaign" means when every worker reports its own peak.
        """
        current = self._maxes.get(name)
        if current is None or value > current:
            self._maxes[name] = value

    def merge_maxes(self, maxes: dict[str, float]) -> None:
        """Fold max gauges observed elsewhere (a worker) into the registry."""
        for name, value in maxes.items():
            self.record_max(name, value)

    def max_value(self, name: str) -> float | None:
        return self._maxes.get(name)

    @contextmanager
    def timer(self, name: str):
        """Accumulate the wall time of the ``with`` body under ``name``.

        No-op (but still a valid context manager) when disabled.
        """
        tracer = self.tracer
        if not self.enabled and tracer is None:
            yield
            return
        if tracer is not None:
            tracer.begin(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            if self.enabled:
                self._timers[name] += time.perf_counter() - start
            if tracer is not None:
                tracer.end()

    # -- reporting -----------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def snapshot(self) -> dict[str, dict]:
        """JSON-ready copy: ``{"counters": {...}, "timers": {...}}``."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "timers": {k: round(v, 6) for k, v in sorted(self._timers.items())},
            "maxes": {k: round(v, 3) for k, v in sorted(self._maxes.items())},
        }

    def write_snapshot(self, path) -> None:
        """Dump :meth:`snapshot` as JSON, creating parent directories.

        Campaign workers use this to drop a per-task perf snapshot into
        the campaign directory's ``perf/`` subdir.
        """
        import json

        from repro.paths import ensure_parent_dir

        with open(ensure_parent_dir(path), "w") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def format(self) -> str:
        """Human-readable report (the ``overhead`` experiment prints it)."""
        lines = []
        if self._timers:
            lines.append("perf timers (cumulative seconds):")
            width = max(len(k) for k in self._timers)
            for name, seconds in sorted(self._timers.items()):
                lines.append(f"  {name:<{width}}  {seconds:10.4f}")
        if self._counters:
            lines.append("perf counters:")
            width = max(len(k) for k in self._counters)
            for name, count in sorted(self._counters.items()):
                lines.append(f"  {name:<{width}}  {count:>12}")
        if self._maxes:
            lines.append("perf maxes:")
            width = max(len(k) for k in self._maxes)
            for name, value in sorted(self._maxes.items()):
                lines.append(f"  {name:<{width}}  {value:>12.3f}")
        return "\n".join(lines) if lines else "perf registry: no events recorded"


def sample_peak_rss() -> float:
    """This process's lifetime peak RSS in MB (children folded in).

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS; normalize to
    MB so the ``peak_rss_mb`` gauge means the same thing everywhere.
    """
    import resource
    import sys

    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    divisor = (1 << 20) if sys.platform == "darwin" else (1 << 10)
    return round(peak / divisor, 3)


#: The process-wide registry instrumentation points report into.
PERF = PerfRegistry()
