"""The replication service daemon: asyncio HTTP front + process pool.

``repro serve`` turns the flow into a long-lived, multi-tenant service:
clients submit place/optimize/route/campaign jobs over HTTP, the daemon
queues them in the durable :class:`~repro.serve.store.JobStore`
(``serve.sqlite``), executes them on forked worker processes (one
process per job attempt, the campaign scheduler's isolation model), and
streams per-iteration progress from each job's JSONL journal.

Endpoints (all JSON; one request per connection):

==========================================  ==================================
``GET  /healthz``                           liveness probe
``GET  /v1/status``                         queue counts + ``serve.*`` metrics
``POST /v1/jobs``                           submit ``{kind, config, client?,
                                            cache?}``
``GET  /v1/jobs``                           list (``?client=&status=&limit=``)
``GET  /v1/jobs/<id>``                      one job's full status row
``GET  /v1/jobs/<id>/result``               the stored ``result.json`` text
``POST /v1/jobs/<id>/cancel``               cancel pending/running
``GET  /v1/jobs/<id>/events``               live NDJSON journal stream
==========================================  ==================================

Durability: a submission is committed to SQLite before its HTTP ack, and
only this (parent) process ever writes the store — workers report over a
pipe.  ``kill -9`` at any instant therefore loses nothing: on restart,
``running`` rows are handed back to the queue and re-executed, and ids
are primary keys so no job can complete twice.

Result cache: submissions are keyed by the canonical config hash
(:func:`repro.serve.jobs.job_hash`).  A hash that already has a ``done``
job is answered with that job id immediately (``cached: true``) and its
``/result`` serves the stored text — byte-identical to the fresh run
that populated it.  A hash that is still in flight coalesces onto the
running job (``coalesced: true``) instead of duplicating work.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import threading
import time
import urllib.parse
from dataclasses import dataclass
from pathlib import Path

from repro.core.journal import JournalTail
from repro.perf import PERF
from repro.serve.jobs import (
    JOURNAL_FILE,
    JobError,
    canonical_text,
    job_hash,
    job_worker_main,
    normalize_config,
)
from repro.serve.store import JobStore, job_to_dict, new_job_id

#: Discovery file written next to the store once the socket is bound.
DISCOVERY_FILE = "serve.json"

#: Subdirectory of the state dir holding per-job run directories.
JOBS_DIR = "jobs"

#: Terminal job states (no further transitions).
TERMINAL = ("done", "failed", "cancelled")

_MAX_BODY = 10 << 20


@dataclass
class _JobHandle:
    """Bookkeeping for one in-flight worker process."""

    job_id: str
    process: object
    conn: object
    attempt: int
    started: float
    deadline: float | None


class ServeDaemon:
    """One service instance over one state directory.

    Args:
        state_dir: Directory holding ``serve.sqlite``, ``serve.json``
            and the per-job run directories (``jobs/<job_id>/``).
        host/port: Bind address; port 0 picks an ephemeral port (the
            bound port lands in ``serve.json`` and :attr:`port`).
        workers: Maximum concurrent worker processes.
        retries: Re-runs after a job's first failed attempt.
        job_timeout: Kill a worker after this many seconds (None = off).
        cache: Serve identical submissions from the result cache
            (per-submission ``cache: false`` still forces a fresh run).
        echo: Progress-line sink (e.g. ``print``); None = silent.
    """

    def __init__(
        self,
        state_dir: str | Path,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        retries: int = 0,
        job_timeout: float | None = None,
        cache: bool = True,
        echo=None,
        mp_context=None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        self.retries = max(0, retries)
        self.job_timeout = job_timeout
        self.cache = cache
        self.echo = echo or (lambda message: None)
        self.store = JobStore.in_dir(self.state_dir)
        self._ctx = mp_context or multiprocessing.get_context()
        self._running: dict[str, _JobHandle] = {}
        self._stop_event: asyncio.Event | None = None
        self._started_at = time.time()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------

    def run(self, *, install_signal_handlers: bool = True) -> None:
        """Run the daemon until :meth:`stop` (or SIGTERM/SIGINT)."""
        asyncio.run(self._run_async(install_signal_handlers))

    def start_background(self) -> None:
        """Run the daemon on a background thread; returns once bound."""
        self._thread = threading.Thread(
            target=self.run, kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        self._thread.start()
        if not self._ready.wait(10.0):
            raise RuntimeError("serve daemon did not come up within 10s")

    def stop(self) -> None:
        """Request a graceful shutdown (thread-safe)."""
        loop, event = self._loop, self._stop_event
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(10.0)
            self._thread = None

    async def _run_async(self, install_signal_handlers: bool) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        signum, self._stop_event.set
                    )
                except (NotImplementedError, RuntimeError):
                    pass
        perf_was_enabled = PERF.enabled
        PERF.enable()
        orphaned = self.store.reset_orphaned()
        if orphaned:
            self.echo(f"serve: requeued {orphaned} orphaned job(s)")
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._write_discovery()
        self.echo(
            f"serve: listening on http://{self.host}:{self.port} "
            f"({self.workers} worker(s), state in {self.state_dir})"
        )
        scheduler = asyncio.create_task(self._scheduler_loop())
        self._ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            scheduler.cancel()
            try:
                await scheduler
            except asyncio.CancelledError:
                pass
            self._shutdown_workers()
            if not perf_was_enabled:
                # don't leak an enabled registry into embedding hosts
                # (tests, notebooks); counters survive a disable
                PERF.disable()
            self.echo("serve: shut down")

    def _write_discovery(self) -> None:
        payload = {
            "host": self.host,
            "port": self.port,
            "pid": os.getpid(),
            "started_at": self._started_at,
        }
        path = self.state_dir / DISCOVERY_FILE
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)

    def _shutdown_workers(self) -> None:
        """Graceful-exit path: kill workers, requeue their jobs."""
        for handle in list(self._running.values()):
            handle.process.kill()
            handle.process.join()
            self._close(handle)
            self.store.mark_job_pending(handle.job_id, error="interrupted")

    # -- scheduler -----------------------------------------------------

    async def _scheduler_loop(self) -> None:
        while True:
            self._launch_ready()
            self._poll_workers()
            await asyncio.sleep(0.02)

    def _launch_ready(self) -> None:
        free = self.workers - len(self._running)
        if free <= 0:
            return
        for row in self.store.next_pending(limit=free):
            job_id = row["job_id"]
            if job_id in self._running:
                continue
            self.store.mark_job_running(job_id)
            payload = {
                "job_id": job_id,
                "kind": row["kind"],
                "config": json.loads(row["config"]),
                "run_dir": row["run_dir"],
            }
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            # daemon=False: campaign jobs fork their own workers, which
            # a daemonic process is not allowed to do.
            process = self._ctx.Process(
                target=job_worker_main, args=(child_conn, payload),
                daemon=False,
            )
            process.start()
            child_conn.close()
            now = time.monotonic()
            self._running[job_id] = _JobHandle(
                job_id=job_id,
                process=process,
                conn=parent_conn,
                attempt=row["attempts"] + 1,
                started=now,
                deadline=(
                    now + self.job_timeout if self.job_timeout else None
                ),
            )
            self.echo(f"run     {job_id} (attempt {row['attempts'] + 1})")

    def _poll_workers(self) -> None:
        now = time.monotonic()
        for handle in list(self._running.values()):
            if handle.conn.poll(0):
                self._reap(handle)
            elif handle.deadline is not None and now > handle.deadline:
                handle.process.kill()
                handle.process.join()
                self._close(handle)
                self._record_failure(
                    handle,
                    f"job timed out after {self.job_timeout:g}s "
                    f"(worker killed)",
                )
            elif not handle.process.is_alive():
                self._reap(handle)

    def _reap(self, handle: _JobHandle) -> None:
        try:
            kind, payload = handle.conn.recv()
        except (EOFError, OSError):
            handle.process.join()
            kind, payload = "error", (
                f"worker exited with code {handle.process.exitcode} "
                f"before reporting a result"
            )
        handle.process.join()
        self._close(handle)
        seconds = time.monotonic() - handle.started
        if kind == "ok":
            self.store.finish_job(handle.job_id, payload, seconds)
            PERF.add("serve.jobs_done")
            PERF.add_time("serve.job_seconds", seconds)
            self.echo(f"done    {handle.job_id} ({seconds:.1f}s)")
        else:
            self._record_failure(handle, payload, seconds)

    def _record_failure(
        self, handle: _JobHandle, error: str, seconds: float | None = None
    ) -> None:
        if seconds is None:
            seconds = time.monotonic() - handle.started
        if handle.attempt <= self.retries:
            self.store.mark_job_pending(handle.job_id, error=error)
            self.echo(
                f"retry   {handle.job_id} (attempt {handle.attempt} failed)"
            )
        else:
            self.store.fail_job(handle.job_id, error, seconds)
            PERF.add("serve.jobs_failed")
            self.echo(
                f"failed  {handle.job_id} after {handle.attempt} attempt(s)"
            )

    def _close(self, handle: _JobHandle) -> None:
        try:
            handle.conn.close()
        except OSError:
            pass
        self._running.pop(handle.job_id, None)

    # -- HTTP front ----------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, params, body = request
            await self._dispatch(writer, method, path, params, body)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass
        except Exception as exc:  # never take the daemon down on a request
            try:
                self._send_json(writer, 500, {"error": repr(exc)})
            except (ConnectionResetError, OSError):
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, _version = line.decode("latin-1").split(" ", 2)
        except ValueError:
            return None
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        params = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(query).items()
        }
        return method, path, params, body

    async def _dispatch(self, writer, method, path, params, body) -> None:
        parts = [part for part in path.split("/") if part]
        if path == "/healthz" and method == "GET":
            self._send_json(writer, 200, {"ok": True})
        elif path == "/v1/status" and method == "GET":
            self._send_json(writer, 200, self._status_payload())
        elif path == "/v1/jobs" and method == "POST":
            code, payload = self._submit(body)
            self._send_json(writer, code, payload)
        elif path == "/v1/jobs" and method == "GET":
            limit = int(params["limit"]) if "limit" in params else None
            rows = self.store.job_rows(
                client=params.get("client"),
                status=params.get("status"),
                limit=limit,
            )
            self._send_json(
                writer, 200, {"jobs": [job_to_dict(row) for row in rows]}
            )
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"] and method == "GET":
            row = self.store.job(parts[2])
            if row is None:
                self._send_json(writer, 404, {"error": f"no job {parts[2]}"})
            else:
                self._send_json(writer, 200, job_to_dict(row))
        elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
              and parts[3] == "result" and method == "GET"):
            self._send_result(writer, parts[2])
        elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
              and parts[3] == "cancel" and method == "POST"):
            code, payload = self._cancel(parts[2])
            self._send_json(writer, code, payload)
        elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
              and parts[3] == "events" and method == "GET"):
            await self._stream_events(writer, parts[2])
        else:
            self._send_json(
                writer, 404, {"error": f"no route {method} {path}"}
            )

    # -- handlers ------------------------------------------------------

    def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            request = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, {"error": f"bad JSON body: {exc}"}
        if not isinstance(request, dict):
            return 400, {"error": "body must be a JSON object"}
        kind = request.get("kind", "optimize")
        client = str(request.get("client") or "anon")
        use_cache = self.cache and bool(request.get("cache", True))
        try:
            config = normalize_config(kind, request.get("config"))
        except JobError as exc:
            return 400, {"error": str(exc)}
        config_hash = job_hash(kind, config)
        PERF.add("serve.jobs_submitted")
        if use_cache:
            row = self.store.find_cached(config_hash)
            if row is not None:
                PERF.add("serve.cache_hits")
                return 200, {
                    "job_id": row["job_id"],
                    "status": "done",
                    "cached": True,
                    "config_hash": config_hash,
                }
            row = self.store.find_active(config_hash)
            if row is not None:
                PERF.add("serve.coalesced")
                return 200, {
                    "job_id": row["job_id"],
                    "status": row["status"],
                    "coalesced": True,
                    "config_hash": config_hash,
                }
        job_id = new_job_id(kind)
        run_dir = self.state_dir / JOBS_DIR / job_id
        self.store.submit_job(
            job_id,
            client=client,
            kind=kind,
            config_text=canonical_text(config),
            config_hash=config_hash,
            run_dir=str(run_dir),
        )
        PERF.record_max(
            "serve.queue_depth", self.store.job_counts()["pending"]
        )
        self.echo(f"queued  {job_id} (client {client})")
        return 201, {
            "job_id": job_id,
            "status": "pending",
            "cached": False,
            "config_hash": config_hash,
        }

    def _cancel(self, job_id: str) -> tuple[int, dict]:
        row = self.store.job(job_id)
        if row is None:
            return 404, {"error": f"no job {job_id}"}
        if row["status"] in TERMINAL:
            return 409, {
                "error": f"job {job_id} already {row['status']}",
                "status": row["status"],
            }
        handle = self._running.pop(job_id, None)
        if handle is not None:
            handle.process.kill()
            handle.process.join()
            try:
                handle.conn.close()
            except OSError:
                pass
        self.store.cancel_job(job_id)
        PERF.add("serve.jobs_cancelled")
        self.echo(f"cancel  {job_id}")
        return 200, {"job_id": job_id, "status": "cancelled"}

    def _send_result(self, writer, job_id: str) -> None:
        row = self.store.job(job_id)
        if row is None:
            self._send_json(writer, 404, {"error": f"no job {job_id}"})
        elif row["status"] != "done" or row["result"] is None:
            self._send_json(writer, 404, {
                "error": f"job {job_id} has no result "
                         f"(status {row['status']})",
                "status": row["status"],
            })
        else:
            # The stored text verbatim: byte-identical to the run that
            # produced it, cache hit or not.
            self._send_raw(
                writer, 200, row["result"].encode(), "application/json"
            )

    def _status_payload(self) -> dict:
        snapshot = PERF.snapshot()
        serve = {
            section: {
                name: value
                for name, value in snapshot[section].items()
                if name.startswith("serve.")
            }
            for section in ("counters", "timers", "maxes")
        }
        return {
            "ok": True,
            "state_dir": str(self.state_dir),
            "workers": self.workers,
            "uptime_seconds": round(time.time() - self._started_at, 1),
            "jobs": self.store.job_counts(),
            "running": sorted(self._running),
            "perf": serve,
        }

    async def _stream_events(self, writer, job_id: str) -> None:
        row = self.store.job(job_id)
        if row is None:
            self._send_json(writer, 404, {"error": f"no job {job_id}"})
            return
        self._send_headers(
            writer, 200, "application/x-ndjson", length=None
        )
        tail = JournalTail(Path(row["run_dir"]) / JOURNAL_FILE)
        idle_rounds = 0
        while True:
            entries = tail.poll()
            for entry in entries:
                writer.write((json.dumps(entry) + "\n").encode())
            if entries:
                idle_rounds = 0
                await writer.drain()
            if tail.finished:
                return
            status = self.store.job(job_id)["status"]
            if status in TERMINAL:
                # Journal will not grow any further (failed before a
                # crash marker, or cancelled): emit a final status line.
                idle_rounds += 1
                if idle_rounds >= 2:
                    writer.write((json.dumps(
                        {"kind": "status", "status": status}
                    ) + "\n").encode())
                    await writer.drain()
                    return
            await asyncio.sleep(0.05)

    # -- response plumbing ---------------------------------------------

    _REASONS = {200: "OK", 201: "Created", 400: "Bad Request",
                404: "Not Found", 409: "Conflict",
                500: "Internal Server Error"}

    def _send_headers(self, writer, code: int, content_type: str,
                      length: int | None) -> None:
        reason = self._REASONS.get(code, "OK")
        head = [
            f"HTTP/1.1 {code} {reason}",
            f"Content-Type: {content_type}",
            "Connection: close",
        ]
        if length is not None:
            head.append(f"Content-Length: {length}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode())

    def _send_raw(self, writer, code: int, payload: bytes,
                  content_type: str) -> None:
        self._send_headers(writer, code, content_type, len(payload))
        writer.write(payload)

    def _send_json(self, writer, code: int, obj) -> None:
        self._send_raw(
            writer, code, (json.dumps(obj) + "\n").encode(),
            "application/json",
        )
