"""Replication-as-a-service: durable job queue + HTTP daemon + client.

``repro serve`` wraps the flow (:mod:`repro.api`) and the campaign
engine in a long-lived daemon: multi-tenant job submission over HTTP, a
SIGKILL-safe SQLite queue (the campaign store idiom), per-job streaming
progress from the flow journal, and a result cache keyed by the
canonical config hash.  See :mod:`repro.serve.daemon` for the endpoint
table and the durability contract.
"""

from repro.serve.client import JobFailed, ServeClient, ServeError
from repro.serve.daemon import DISCOVERY_FILE, JOBS_DIR, ServeDaemon
from repro.serve.jobs import (
    JOB_KINDS,
    JobError,
    execute_job,
    job_hash,
    normalize_config,
)
from repro.serve.store import JOB_STATUSES, JobStore, job_to_dict

__all__ = [
    "DISCOVERY_FILE",
    "JOBS_DIR",
    "JOB_KINDS",
    "JOB_STATUSES",
    "JobError",
    "JobFailed",
    "JobStore",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "execute_job",
    "job_hash",
    "job_to_dict",
    "normalize_config",
]
