"""Durable job queue of the replication service (``serve.sqlite``).

The serve daemon extends the campaign engine's SIGKILL-safe store idiom
(:class:`repro.campaign.store.CampaignStore`: WAL mode, per-operation
connections, parent-only writes) with a ``jobs`` table — the
multi-tenant submission queue.  One row per submitted job carries the
client token, the job kind, the canonical config JSON and its hash, the
full lifecycle timestamps, and — once done — the *exact text* of the
job's ``result.json``, which is what the result-cache serves back for an
identical resubmission (byte-identical by construction).

Durability contract, inherited from the campaign store:

* a job is in the table (committed) before its submission is
  acknowledged over HTTP, so an acknowledged job survives any crash;
* only the daemon's parent process writes rows — a ``kill -9`` leaves
  at worst ``running`` rows, which :meth:`JobStore.reset_orphaned`
  hands back to the queue on restart;
* job ids are primary keys, so a job can never be recorded twice.
"""

from __future__ import annotations

import json
import time
import uuid

from repro.campaign.store import CampaignStore

SERVE_STORE_FILE = "serve.sqlite"

#: Job lifecycle states.  ``pending -> running -> done|failed``;
#: ``cancelled`` can be entered from ``pending`` or ``running``.
JOB_STATUSES = ("pending", "running", "done", "failed", "cancelled")

#: States a job can still make progress from (coalescing targets).
ACTIVE_STATUSES = ("pending", "running")

_JOBS_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id       TEXT PRIMARY KEY,
    client       TEXT NOT NULL DEFAULT 'anon',
    kind         TEXT NOT NULL,
    config       TEXT NOT NULL,
    config_hash  TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'pending',
    cached_from  TEXT,
    attempts     INTEGER NOT NULL DEFAULT 0,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    seconds      REAL NOT NULL DEFAULT 0.0,
    error        TEXT,
    result       TEXT,
    run_dir      TEXT
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs(status);
CREATE INDEX IF NOT EXISTS jobs_hash ON jobs(config_hash, status);
CREATE INDEX IF NOT EXISTS jobs_client ON jobs(client);
"""


def new_job_id(kind: str) -> str:
    """Fresh unique job id, prefixed with the kind for readability."""
    return f"{kind}-{uuid.uuid4().hex[:12]}"


class JobStore(CampaignStore):
    """Campaign store plus the serve daemon's ``jobs`` queue table."""

    FILENAME = SERVE_STORE_FILE
    SCHEMA_EXTENSIONS = (_JOBS_SCHEMA,)

    # -- submission ----------------------------------------------------

    def submit_job(
        self,
        job_id: str,
        *,
        client: str,
        kind: str,
        config_text: str,
        config_hash: str,
        run_dir: str,
    ) -> None:
        """Insert a fresh pending job (committed before the HTTP ack)."""
        with self._connect() as conn:
            conn.execute(
                "INSERT INTO jobs(job_id, client, kind, config, config_hash,"
                " status, submitted_at, run_dir)"
                " VALUES(?,?,?,?,?,'pending',?,?)",
                (job_id, client, kind, config_text, config_hash,
                 time.time(), run_dir),
            )

    def find_cached(self, config_hash: str) -> "sqlite3.Row | None":
        """Earliest ``done`` job with this config hash (the cache entry)."""
        with self._connect() as conn:
            return conn.execute(
                "SELECT * FROM jobs WHERE config_hash=? AND status='done'"
                " ORDER BY submitted_at, rowid LIMIT 1",
                (config_hash,),
            ).fetchone()

    def find_active(self, config_hash: str) -> "sqlite3.Row | None":
        """Earliest still-in-flight job with this hash (coalescing)."""
        with self._connect() as conn:
            return conn.execute(
                "SELECT * FROM jobs WHERE config_hash=?"
                " AND status IN ('pending', 'running')"
                " ORDER BY submitted_at, rowid LIMIT 1",
                (config_hash,),
            ).fetchone()

    # -- queue ---------------------------------------------------------

    def next_pending(self, limit: int = 1) -> list["sqlite3.Row"]:
        """Oldest pending jobs in FIFO (submission) order."""
        with self._connect() as conn:
            return conn.execute(
                "SELECT * FROM jobs WHERE status='pending'"
                " ORDER BY submitted_at, rowid LIMIT ?",
                (limit,),
            ).fetchall()

    def mark_job_running(self, job_id: str) -> None:
        with self._connect() as conn:
            conn.execute(
                "UPDATE jobs SET status='running', attempts=attempts+1,"
                " started_at=? WHERE job_id=?",
                (time.time(), job_id),
            )

    def mark_job_pending(self, job_id: str, error: str | None = None) -> None:
        """Back to the queue (retry, or reset of an orphaned row)."""
        with self._connect() as conn:
            conn.execute(
                "UPDATE jobs SET status='pending', error=? WHERE job_id=?",
                (error, job_id),
            )

    def finish_job(self, job_id: str, result_text: str, seconds: float,
                   *, cached_from: str | None = None) -> None:
        with self._connect() as conn:
            conn.execute(
                "UPDATE jobs SET status='done', result=?, seconds=?,"
                " finished_at=?, error=NULL, cached_from=? WHERE job_id=?",
                (result_text, seconds, time.time(), cached_from, job_id),
            )

    def fail_job(self, job_id: str, error: str, seconds: float = 0.0) -> None:
        with self._connect() as conn:
            conn.execute(
                "UPDATE jobs SET status='failed', error=?, seconds=?,"
                " finished_at=? WHERE job_id=?",
                (error, seconds, time.time(), job_id),
            )

    def cancel_job(self, job_id: str) -> None:
        with self._connect() as conn:
            conn.execute(
                "UPDATE jobs SET status='cancelled', finished_at=?"
                " WHERE job_id=?",
                (time.time(), job_id),
            )

    def reset_orphaned(self) -> int:
        """Restart entry point: ``running`` rows a dead daemon left behind
        go back to pending.  Returns the number of rows reset."""
        with self._connect() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET status='pending'"
                " WHERE status='running'"
            )
            return cursor.rowcount

    # -- inspection ----------------------------------------------------

    def job(self, job_id: str) -> "sqlite3.Row | None":
        with self._connect() as conn:
            return conn.execute(
                "SELECT * FROM jobs WHERE job_id=?", (job_id,)
            ).fetchone()

    def job_rows(
        self,
        *,
        client: str | None = None,
        status: str | None = None,
        limit: int | None = None,
    ) -> list["sqlite3.Row"]:
        query = "SELECT * FROM jobs"
        clauses, params = [], []
        if client is not None:
            clauses.append("client=?")
            params.append(client)
        if status is not None:
            clauses.append("status=?")
            params.append(status)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY submitted_at, rowid"
        if limit is not None:
            query += " LIMIT ?"
            params.append(limit)
        with self._connect() as conn:
            return conn.execute(query, params).fetchall()

    def job_counts(self) -> dict[str, int]:
        counts = {status: 0 for status in JOB_STATUSES}
        with self._connect() as conn:
            for row in conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ):
                counts[row["status"]] = row["n"]
        return counts


def job_to_dict(row) -> dict:
    """JSON-ready public view of a jobs row (result text elided)."""
    return {
        "job_id": row["job_id"],
        "client": row["client"],
        "kind": row["kind"],
        "config": json.loads(row["config"]),
        "config_hash": row["config_hash"],
        "status": row["status"],
        "cached_from": row["cached_from"],
        "attempts": row["attempts"],
        "submitted_at": row["submitted_at"],
        "started_at": row["started_at"],
        "finished_at": row["finished_at"],
        "seconds": row["seconds"],
        "error": row["error"],
        "run_dir": row["run_dir"],
    }
