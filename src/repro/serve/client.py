"""Thin stdlib client for the replication service.

One class, no dependencies beyond :mod:`http.client`: each call opens a
fresh connection (the daemon closes after every response anyway), so a
:class:`ServeClient` is safe to share across threads — the load
generator drives hundreds of concurrent submissions through one.

    client = ServeClient.from_dir("state/")   # reads serve.json
    ack = client.submit("place", {"circuit": "tseng", "scale": 0.05})
    job = client.wait(ack["job_id"], timeout=60)
    print(client.result_json(job["job_id"]))
    for event in client.events(job["job_id"]):
        ...                                   # live journal stream
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from pathlib import Path

from repro.serve.daemon import DISCOVERY_FILE

#: Job states with no further transitions (mirrors the daemon).
TERMINAL = ("done", "failed", "cancelled")


class ServeError(Exception):
    """HTTP-level error from the service (4xx/5xx responses)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class JobFailed(ServeError):
    """Raised by :meth:`ServeClient.wait` when the job ends failed."""

    def __init__(self, job: dict) -> None:
        error = (job.get("error") or "").strip().splitlines()
        last = error[-1] if error else "no error recorded"
        Exception.__init__(
            self, f"job {job['job_id']} {job['status']}: {last}"
        )
        self.status = 0
        self.message = last
        self.job = job


class ServeClient:
    """Synchronous client bound to one daemon address."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_dir(cls, state_dir: str | Path, **kwargs) -> "ServeClient":
        """Connect to the daemon serving ``state_dir`` (via serve.json)."""
        path = Path(state_dir) / DISCOVERY_FILE
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise ServeError(
                0, f"no {DISCOVERY_FILE} in {state_dir} — daemon not started?"
            ) from None
        return cls(payload["host"], payload["port"], **kwargs)

    # -- raw request ---------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None):
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
        finally:
            conn.close()
        return response.status, data

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        status, data = self._request(method, path, body)
        try:
            payload = json.loads(data.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": data[:200].decode(errors="replace")}
        if status >= 400:
            raise ServeError(status, payload.get("error", "request failed"))
        return payload

    # -- API surface ---------------------------------------------------

    def health(self) -> bool:
        try:
            return bool(self._json("GET", "/healthz").get("ok"))
        except (OSError, ServeError):
            return False

    def status(self) -> dict:
        return self._json("GET", "/v1/status")

    def submit(
        self,
        kind: str,
        config: dict | None = None,
        *,
        client: str = "anon",
        cache: bool = True,
    ) -> dict:
        """Submit a job; returns the ack (``job_id``/``status``/``cached``)."""
        return self._json("POST", "/v1/jobs", {
            "kind": kind,
            "config": config or {},
            "client": client,
            "cache": cache,
        })

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def jobs(
        self,
        *,
        client: str | None = None,
        status: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        params = {}
        if client is not None:
            params["client"] = client
        if status is not None:
            params["status"] = status
        if limit is not None:
            params["limit"] = str(limit)
        path = "/v1/jobs"
        if params:
            path += "?" + urllib.parse.urlencode(params)
        return self._json("GET", path)["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel")

    def result(self, job_id: str) -> bytes:
        """The job's ``result.json`` text, byte-exact as stored."""
        status, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status >= 400:
            try:
                message = json.loads(data.decode()).get("error", "no result")
            except (UnicodeDecodeError, json.JSONDecodeError):
                message = "no result"
            raise ServeError(status, message)
        return data

    def result_json(self, job_id: str) -> dict:
        return json.loads(self.result(job_id).decode())

    def wait(
        self,
        job_id: str,
        *,
        timeout: float | None = None,
        poll_interval: float = 0.1,
        raise_on_failure: bool = True,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its row."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["status"] in TERMINAL:
                if raise_on_failure and job["status"] != "done":
                    raise JobFailed(job)
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['status']} after {timeout:g}s"
                )
            time.sleep(poll_interval)

    def events(self, job_id: str):
        """Generator over the job's live journal stream (NDJSON lines).

        Yields dict entries as the daemon streams them; ends when the
        job's journal reaches its ``result``/``crash`` entry (or the
        daemon closes the stream on a terminal job with a final
        ``{"kind": "status", ...}`` line).
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/events")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                try:
                    message = json.loads(data.decode()).get("error", "")
                except (UnicodeDecodeError, json.JSONDecodeError):
                    message = ""
                raise ServeError(response.status, message or "stream failed")
            for raw in response:
                line = raw.decode().strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()
