"""Job model and worker-side execution for the replication service.

A *job* is one unit of service work: a kind (``place`` / ``optimize`` /
``route`` / ``campaign``) plus a JSON config.  Flow kinds take the same
config surface as :class:`repro.core.config.RunConfig` (the CLI/API
execution knobs — partial configs are filled from the defaults);
``campaign`` jobs take the campaign matrix parameters.

The config is *canonicalized* at submission — defaults filled in,
unknown keys rejected, names validated — and hashed with the same
sorted-key JSON protocol as :func:`repro.core.checkpoint.config_hash`,
so the hash is invariant under client-side key order and stable across
processes.  That hash keys the daemon's result cache: an identical
submission is served the stored ``result.json`` text byte-identically.

:func:`execute_job` runs in a worker process forked by the daemon.  It
writes the job's run-directory artifacts (``journal.jsonl`` streamed
per event for live progress, ``result.json`` replaced atomically) and
returns the exact result text the parent stores.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import traceback
from pathlib import Path

from repro.core.config import RunConfig
from repro.core.journal import FlowJournal

JOB_KINDS = ("place", "optimize", "route", "campaign")

RESULT_FILE = "result.json"
JOURNAL_FILE = "journal.jsonl"


class JobError(ValueError):
    """Invalid job submission (unknown kind, bad config)."""


# ----------------------------------------------------------------------
# Config canonicalization and hashing
# ----------------------------------------------------------------------

#: Campaign-kind config surface (subset of CampaignConfig, sans faults).
CAMPAIGN_DEFAULTS = {
    "circuits": ["tseng"],
    "algorithms": ["rt"],
    "seeds": [0],
    "scale": 0.08,
    "effort": 1.0,
    "jobs": 1,
    "timeout": None,
    "retries": 2,
    "backoff": 0.5,
    "route_jobs": 1,
    "wmin_engine": "fast",
    "route_kernel": None,
    "route_search": None,
}


def normalize_config(kind: str, config: dict | None) -> dict:
    """Fill defaults, reject unknown keys, validate names.

    Returns the full config dict a worker will execute — the canonical
    form the job hash is computed over, so two submissions that differ
    only in omitted-vs-explicit defaults (or key order) coalesce.
    """
    if kind not in JOB_KINDS:
        raise JobError(
            f"unknown job kind {kind!r}; valid: {', '.join(JOB_KINDS)}"
        )
    config = dict(config or {})
    if kind == "campaign":
        return _normalize_campaign(config)
    defaults = RunConfig().to_dict()
    unknown = sorted(set(config) - set(defaults))
    if unknown:
        raise JobError(
            f"unknown config key(s) for {kind} job: {', '.join(unknown)}"
        )
    merged = {**defaults, **config}
    if (merged["circuit"] is None) == (merged["blif"] is None):
        raise JobError("config needs exactly one of 'circuit' or 'blif'")
    if merged["circuit"] is not None:
        from repro.bench.suite import SPEC_BY_NAME

        if merged["circuit"] not in SPEC_BY_NAME:
            raise JobError(
                f"unknown circuit {merged['circuit']!r}; "
                f"valid: {', '.join(sorted(SPEC_BY_NAME))}"
            )
    if kind == "optimize" and merged["algorithm"] != "none":
        from repro.core.signatures import scheme_by_name

        try:
            scheme_by_name(merged["algorithm"])
        except ValueError as exc:
            raise JobError(str(exc)) from None
    try:
        RunConfig.from_dict(merged)
    except TypeError as exc:  # defensive: defaults keep this unreachable
        raise JobError(f"bad config: {exc}") from None
    return merged


def _normalize_campaign(config: dict) -> dict:
    unknown = sorted(set(config) - set(CAMPAIGN_DEFAULTS))
    if unknown:
        raise JobError(
            f"unknown config key(s) for campaign job: {', '.join(unknown)}"
        )
    merged = {**CAMPAIGN_DEFAULTS, **config}
    from repro.bench.runner import ALGORITHMS
    from repro.bench.suite import resolve_names

    if isinstance(merged["algorithms"], str):
        merged["algorithms"] = [
            token.strip() for token in merged["algorithms"].split(",")
        ]
    bad = sorted(set(merged["algorithms"]) - set(ALGORITHMS))
    if bad:
        raise JobError(
            f"unknown algorithm(s): {', '.join(bad)}; "
            f"valid: {', '.join(ALGORITHMS)}"
        )
    try:
        merged["circuits"] = resolve_names(merged["circuits"])
    except ValueError as exc:
        raise JobError(str(exc)) from None
    merged["seeds"] = [int(seed) for seed in merged["seeds"]]
    return merged


def canonical_text(config: dict) -> str:
    """Sorted-key JSON text of a config (what the store records)."""
    return json.dumps(config, sort_keys=True)


def job_hash(kind: str, config: dict) -> str:
    """Cache key of a normalized job: sha256 over kind + sorted config.

    Same canonicalization protocol as
    :func:`repro.core.checkpoint.config_hash` (sorted-key JSON →
    sha256 → 16 hex chars), with the kind folded in so a ``place`` and
    a ``route`` job over the same config never collide.
    """
    canonical = json.dumps({"kind": kind, "config": config}, sort_keys=True)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------


def _write_result_file(run_dir: Path, payload: dict) -> str:
    """Atomically write ``result.json``; returns its exact text.

    ``os.replace`` keeps a concurrently re-executed job (an orphaned
    worker racing its replacement after a daemon kill) from ever leaving
    a torn file — readers see the old text or the new, never a mix.
    """
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    tmp = run_dir / (RESULT_FILE + ".tmp")
    tmp.write_text(text)
    os.replace(tmp, run_dir / RESULT_FILE)
    return text


def execute_job(payload: dict) -> str:
    """Run one job; returns the exact ``result.json`` text.

    ``payload`` carries ``job_id``, ``kind``, the normalized ``config``
    and the job's ``run_dir``.  Importable directly (tests, debugging).
    """
    kind = payload["kind"]
    config = payload["config"]
    run_dir = Path(payload["run_dir"])
    run_dir.mkdir(parents=True, exist_ok=True)
    if kind == "optimize":
        # The optimizer owns the journal (start/iteration/result events).
        return _execute_optimize(config, run_dir)
    journal = FlowJournal(run_dir / JOURNAL_FILE)
    try:
        if kind == "campaign":
            return _execute_campaign(config, run_dir, journal)
        return _execute_place_route(kind, config, run_dir, journal)
    except BaseException as exc:
        journal.event("crash", error=repr(exc))
        raise
    finally:
        journal.close()


def _load_and_place(cfg: RunConfig):
    from repro import api

    design = api.load_design(
        circuit=cfg.circuit,
        blif=cfg.blif,
        scale=cfg.scale,
        netlist_store=cfg.netlist_store,
    )
    placed = api.place(design, seed=cfg.seed, effort=cfg.place_effort)
    return design, placed


def _execute_place_route(
    kind: str, config: dict, run_dir: Path, journal: FlowJournal
) -> str:
    from repro import api

    cfg = RunConfig.from_dict(config)
    start = time.perf_counter()
    journal.event("start", job_kind=kind, circuit=cfg.circuit or cfg.blif,
                  scale=cfg.scale, seed=cfg.seed)
    design, placed = _load_and_place(cfg)
    journal.event("phase", phase="place",
                  critical_delay=placed.critical_delay,
                  moves_accepted=placed.moves_accepted,
                  wall_seconds=round(placed.seconds, 3))
    evaluation = api.evaluate(design, placed.placement)
    result = {
        "kind": kind,
        "critical_delay": placed.critical_delay,
        "wirelength": evaluation.wirelength,
        "cells": evaluation.cells,
        "luts": evaluation.luts,
        "pads": evaluation.pads,
        "moves_accepted": placed.moves_accepted,
    }
    if kind == "route":
        routed = api.route(
            design, placed.placement, jobs=cfg.route_jobs,
        )
        journal.event("phase", phase="route",
                      channel_width=routed.channel_width,
                      wall_seconds=round(routed.seconds, 3))
        result["route"] = {
            "w_inf": routed.w_inf,
            "w_ls": routed.w_ls,
            "channel_width": routed.channel_width,
            "wirelength": routed.wirelength,
            "engine": routed.engine,
            "kernel": routed.kernel,
            "search": routed.search,
        }
    result["seconds"] = round(time.perf_counter() - start, 3)
    text = _write_result_file(run_dir, result)
    journal.event("result", **{k: v for k, v in result.items()
                               if k not in ("kind", "route")})
    return text


def _execute_optimize(config: dict, run_dir: Path) -> str:
    from repro import api

    cfg = RunConfig.from_dict(config)
    start = time.perf_counter()
    design, placed = _load_and_place(cfg)
    opt = api.optimize(
        design,
        placed.placement,
        config=cfg,
        run_dir=run_dir,
        checkpoint_every=cfg.checkpoint_every,
    )
    # api.optimize wrote result.json; fold in job provenance (and
    # routing, when asked for) and rewrite it canonically.
    payload = json.loads((run_dir / RESULT_FILE).read_text())
    payload["kind"] = "optimize"
    if cfg.route:
        routed = api.route(design, placed.placement, jobs=cfg.route_jobs)
        payload["route"] = {
            "w_inf": routed.w_inf,
            "w_ls": routed.w_ls,
            "channel_width": routed.channel_width,
            "wirelength": routed.wirelength,
            "engine": routed.engine,
            "kernel": routed.kernel,
            "search": routed.search,
        }
    payload["seconds"] = round(time.perf_counter() - start, 3)
    return _write_result_file(run_dir, payload)


def _execute_campaign(config: dict, run_dir: Path, journal: FlowJournal) -> str:
    from repro import api
    from repro.campaign.store import STORE_FILE

    start = time.perf_counter()
    campaign_dir = run_dir / "campaign"
    journal.event("start", job_kind="campaign", circuits=config["circuits"],
                  algorithms=config["algorithms"], seeds=config["seeds"])
    if (campaign_dir / STORE_FILE).exists():
        # Re-execution after a daemon kill: pick the matrix back up.
        summary = api.campaign_resume(campaign_dir)
    else:
        summary = api.campaign_run(
            campaign_dir,
            circuits=config["circuits"],
            algorithms=config["algorithms"],
            seeds=config["seeds"],
            scale=config["scale"],
            effort=config["effort"],
            jobs=config["jobs"],
            timeout=config["timeout"],
            retries=config["retries"],
            backoff=config["backoff"],
            route_jobs=config["route_jobs"],
            wmin_engine=config["wmin_engine"],
            route_kernel=config["route_kernel"],
            route_search=config["route_search"],
        )
    result = {
        "kind": "campaign",
        "total": summary.total,
        "done": summary.done,
        "failed": summary.failed,
        "skipped": summary.skipped,
        "ok": summary.ok,
        "seconds": round(time.perf_counter() - start, 3),
    }
    if not summary.ok:
        result["failures"] = {
            task_id: error.strip().splitlines()[-1] if error.strip() else ""
            for task_id, error in summary.failures.items()
        }
    text = _write_result_file(run_dir, result)
    journal.event("result", **{k: v for k, v in result.items()
                               if k not in ("kind", "failures")})
    return text


def job_worker_main(conn, payload: dict) -> None:
    """Process entry point: execute, report over the pipe, exit."""
    try:
        text = execute_job(payload)
        conn.send(("ok", text))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass
