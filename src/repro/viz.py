"""Text-mode visualization of placements, paths and trade-off curves.

Terminal-friendly renderings used by the examples and handy when
debugging the flow:

* :func:`render_placement` — the FPGA grid with pads, logic occupancy,
  overfull slots and an optional highlighted path;
* :func:`render_critical_path` — the current critical path overlaid on
  the grid;
* :func:`render_trade_off` — the embedder's cost/delay staircase;
* :func:`render_history` — per-iteration delay trajectory of the flow.

Everything returns plain strings (no terminal control codes), so output
can be dumped into logs and golden files.
"""

from __future__ import annotations

from repro.core.embedder import EmbeddingResult
from repro.core.flow import IterationRecord
from repro.netlist.netlist import Netlist
from repro.place.placement import Placement
from repro.timing.sta import TimingAnalysis

#: Glyphs for grid cells.
_EMPTY = "."
_PAD = "o"
_PAD_USED = "@"
_CORNER = " "
_OVERFULL = "#"
_PATH = "*"


def render_placement(
    netlist: Netlist,
    placement: Placement,
    highlight: list[int] | None = None,
) -> str:
    """Render the FPGA as a character grid, origin at the bottom-left.

    Logic slots show their occupancy (``.`` empty, ``1``-``9`` cells,
    ``#`` overfull); pad positions show ``o``/``@`` (free/used); cells of
    ``highlight`` (e.g. a critical path) are drawn as ``*``.
    """
    arch = placement.arch
    marked = set()
    for cell_id in highlight or ():
        slot = placement.get(cell_id)
        if slot is not None:
            marked.add(slot)

    used_pads = {
        placement.get(c.cell_id)
        for c in netlist.cells.values()
        if c.ctype.is_pad and placement.get(c.cell_id) is not None
    }

    rows: list[str] = []
    for y in range(arch.height + 1, -1, -1):
        row: list[str] = []
        for x in range(arch.width + 2):
            slot = (x, y)
            if slot in marked:
                row.append(_PATH)
            elif arch.is_logic_slot(slot):
                count = placement.occupancy(slot)
                if count == 0:
                    row.append(_EMPTY)
                elif count > arch.slot_capacity(slot):
                    row.append(_OVERFULL)
                else:
                    row.append(str(min(count, 9)))
            elif arch.is_pad_slot(slot):
                row.append(_PAD_USED if slot in used_pads else _PAD)
            else:
                row.append(_CORNER)
        rows.append("".join(row))
    legend = (
        f"{netlist.name}: {arch} | '.' empty  1-9 occupancy  '#' overfull  "
        f"'o/@' pad  '*' highlighted"
    )
    return "\n".join(rows + [legend])


def render_critical_path(
    netlist: Netlist, placement: Placement, analysis: TimingAnalysis
) -> str:
    """The critical path overlaid on the placement grid, plus a listing."""
    path = analysis.critical_path()
    grid = render_placement(netlist, placement, highlight=path)
    lines = [grid, "", f"critical path ({analysis.critical_delay:.2f}):"]
    for cell_id in path:
        cell = netlist.cells[cell_id]
        lines.append(
            f"  {cell.name:>12} {cell.ctype.name:<6} at {placement.slot_of(cell_id)}"
            f"  arr {analysis.arrival.get(cell_id, float('nan')):.2f}"
        )
    return "\n".join(lines)


def render_trade_off(result: EmbeddingResult, width: int = 50) -> str:
    """ASCII staircase of the root's cost/delay trade-off curve."""
    curve = result.trade_off()
    if not curve:
        return "(empty trade-off curve)"
    costs = [c for c, _d in curve]
    delays = [d for _c, d in curve]
    c_lo, c_hi = min(costs), max(costs)
    span = (c_hi - c_lo) or 1.0
    lines = ["cost -> delay trade-off:"]
    for cost, delay in curve:
        bar = int((cost - c_lo) / span * width)
        lines.append(f"  {cost:10.2f} |{'=' * bar:<{width}}| {delay:8.2f}")
    return "\n".join(lines)


def render_history(history: list[IterationRecord], width: int = 50) -> str:
    """Per-iteration critical-delay trajectory (Fig. 14 companion)."""
    if not history:
        return "(no iterations)"
    delays = [record.delay_after for record in history]
    lo, hi = min(delays), max(delays + [history[0].delay_before])
    span = (hi - lo) or 1.0
    lines = ["iter   delay  (bar: relative to worst seen)   rep/uni cum"]
    for record in history:
        bar = int((record.delay_after - lo) / span * width)
        flag = "R" if record.ff_relocated else (" " if not record.note else "!")
        lines.append(
            f"{record.iteration:>4} {record.delay_after:8.2f} "
            f"|{'#' * bar:<{width}}| {flag} "
            f"{record.replicated_cum:>3}/{record.unified_cum:<3}"
        )
    return "\n".join(lines)
