"""Small filesystem helpers shared across the run/bench/campaign layers.

Three writers used to carry their own copy of "make sure the directory
this file goes into exists" — the benchmark runner's ``--perf-json``
pre-flight check, the campaign result store, and the flow checkpoint
writer.  They now share :func:`ensure_parent_dir`, which supports both
policies: *create* the parent (the artifact writers) or *fail fast*
before a long experiment starts (the runner's pre-flight check).
"""

from __future__ import annotations

from pathlib import Path


def ensure_parent_dir(path: str | Path, *, create: bool = True) -> Path:
    """Return ``path`` as a :class:`Path` with an existing parent dir.

    With ``create=True`` (default) the parent directory is created,
    parents included.  With ``create=False`` the parent is only checked,
    raising :class:`FileNotFoundError` when missing — the fail-before-
    the-experiment policy of ``bench.runner --perf-json``.
    """
    path = Path(path)
    parent = path.resolve().parent
    if create:
        parent.mkdir(parents=True, exist_ok=True)
    elif not parent.is_dir():
        raise FileNotFoundError(f"directory {str(parent)!r} does not exist")
    return path
